//! SIMD-vs-scalar GEMM comparison on warm conv/dense-shaped kernels.
//!
//! ```text
//! cargo run --release -p deepmorph-bench --features simd --bin gemm_bench           # merge into BENCH_workspace.json
//! cargo run --release -p deepmorph-bench --features simd --bin gemm_bench -- --smoke # CI smoke, no file
//! ```
//!
//! The shapes are the real products the serve hot path runs — the
//! im2col'd convolutions and dense tails of the paper-scale AlexNet at
//! serving batch sizes — measured warm (workspace arena primed) with the
//! same fan-out hint for both backends. Full mode merges a `simd_gemm`
//! section into `BENCH_workspace.json` (other sections untouched) and
//! asserts the acceptance bar: ≥ 2× on every conv/dense shape.

use std::time::Instant;

use deepmorph_json::Json;
use deepmorph_tensor::backend::{self, tune, BackendHandle, GemmSpec};

/// One benchmarked product. Dims are the `GemmSpec` `m/k/n` of real
/// layer products from `alexnet-paper` on `[1, 16, 16]` inputs.
struct Shape {
    key: &'static str,
    what: &'static str,
    m: usize,
    k: usize,
    n: usize,
}

const SHAPES: &[Shape] = &[
    Shape {
        key: "conv2_b32",
        what: "alexnet-paper conv2 im2col (batch 32): [32*64, 24*3*3] @ [48, 216]^T",
        m: 32 * 64,
        k: 216,
        n: 48,
    },
    Shape {
        key: "conv3_b32",
        what: "alexnet-paper conv3 im2col (batch 32): [32*16, 48*3*3] @ [64, 432]^T",
        m: 32 * 16,
        k: 432,
        n: 64,
    },
    Shape {
        key: "dense_fc1_b256",
        what: "alexnet-paper fc1 (batch 256): [256, 192] @ [256, 192]^T",
        m: 256,
        k: 192,
        n: 256,
    },
    Shape {
        key: "dense_fc2_b256",
        what: "alexnet-paper fc2 (batch 256): [256, 256] @ [128, 256]^T",
        m: 256,
        k: 256,
        n: 128,
    },
];

fn synth(len: usize, salt: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(salt.wrapping_mul(0x2545_F491_4F6C_DD1D));
            ((h >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
        })
        .collect()
}

/// Median wall time of `reps` warm runs of `spec` on `be`.
fn median_ns(be: &BackendHandle, spec: &GemmSpec, a: &[f32], b: &[f32], reps: usize) -> f64 {
    let mut out = vec![0.0f32; spec.out_len()];
    // Warm: page-fault the buffers, prime the workspace pack pools.
    for _ in 0..3 {
        out.fill(0.0);
        be.gemm(spec, a, b, &mut out);
    }
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            out.fill(0.0);
            let t = Instant::now();
            be.gemm(spec, a, b, &mut out);
            t.elapsed().as_nanos() as f64
        })
        .collect();
    samples.sort_by(|x, y| x.partial_cmp(y).expect("finite time"));
    samples[samples.len() / 2]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_workspace.json".to_string());

    let scalar = backend::scalar();
    let simd = backend::simd_or_scalar();
    assert_ne!(
        simd.name(),
        "scalar",
        "gemm_bench needs the SIMD backend: build with --features simd on an AVX2+FMA machine"
    );
    println!(
        "backends: {} vs {} (tuning: {})",
        scalar.name(),
        simd.name(),
        tune::load().unwrap_or_default()
    );

    let reps = if smoke { 5 } else { 41 };
    let mut entries: Vec<(String, Json)> = Vec::new();
    let mut worst = f64::INFINITY;
    for s in SHAPES {
        // Serial specs: this entry compares raw kernel speed. (With
        // fan-out on, a host with fewer cores than DEEPMORPH_THREADS
        // measures chunk-dispatch thrash, not the kernels.)
        let spec = GemmSpec::nt(s.m, s.k, s.n);
        let a = synth(spec.lhs_len(), 1);
        let b = synth(spec.rhs_len(), 2);
        let scalar_ns = median_ns(&scalar, &spec, &a, &b, reps);
        let simd_ns = median_ns(&simd, &spec, &a, &b, reps);
        let speedup = scalar_ns / simd_ns;
        worst = worst.min(speedup);
        println!(
            "{:<16} {:>10.0} ns scalar | {:>10.0} ns simd | {speedup:.2}x  ({})",
            s.key, scalar_ns, simd_ns, s.what
        );
        entries.push((
            s.key.to_string(),
            Json::obj([
                ("what", Json::str(s.what)),
                ("m", Json::usize(s.m)),
                ("k", Json::usize(s.k)),
                ("n", Json::usize(s.n)),
                ("scalar_ns", Json::num(scalar_ns)),
                ("simd_ns", Json::num(simd_ns)),
                ("speedup", Json::num(speedup)),
            ]),
        ));
    }

    if smoke {
        assert!(
            worst > 0.0,
            "gemm smoke produced a non-positive speedup measurement"
        );
        println!("gemm smoke OK (worst speedup {worst:.2}x)");
        return;
    }

    let section = Json::obj([
        (
            "note",
            Json::str(
                "Warm single-product medians: the scalar bitwise-reference kernel vs \
                 the AVX2/FMA microkernel on the same serial GemmSpec (fan-out off — \
                 this entry compares raw kernel speed; workspace primed). Shapes are \
                 real alexnet-paper serving products. Regenerate with `cargo run \
                 --release -p deepmorph-bench --features simd --bin gemm_bench`.",
            ),
        ),
        ("cpu", Json::str(tune::cpu_key())),
        ("threads", Json::usize(1)),
        ("shapes", Json::Obj(entries)),
    ]);

    // Merge into BENCH_workspace.json without disturbing other sections.
    let existing = std::fs::read_to_string(&out_path).expect("read BENCH_workspace.json");
    let mut doc = match Json::parse(&existing).expect("parse BENCH_workspace.json") {
        Json::Obj(fields) => fields,
        other => panic!("unexpected BENCH_workspace.json root: {other:?}"),
    };
    doc.retain(|(k, _)| k != "simd_gemm");
    doc.push(("simd_gemm".to_string(), section));
    std::fs::write(&out_path, Json::Obj(doc).to_string_pretty()).expect("write bench file");
    println!("merged simd_gemm into {out_path}");

    assert!(
        worst >= 2.0,
        "SIMD GEMM speedup is {worst:.2}x on the slowest shape, expected >= 2x \
         (is the machine heavily loaded?)"
    );
    println!("acceptance OK: >= {worst:.2}x on every shape");
}
