//! Merges the per-binary JSON written by the criterion shim (see
//! `CRITERION_JSON_DIR`) into a single `BENCH_baseline.json`, computing the
//! serial-vs-parallel speedups the ISSUE acceptance tracks.
//!
//! Usage: `baseline <criterion-json-dir> <output-path>` (defaults:
//! `target/criterion-json`, `BENCH_baseline.json`). Run via
//! `scripts/record_baseline.sh`.

use deepmorph_json::Json;

fn main() {
    let mut args = std::env::args().skip(1);
    let dir = args
        .next()
        .unwrap_or_else(|| "target/criterion-json".into());
    let out_path = args.next().unwrap_or_else(|| "BENCH_baseline.json".into());

    let mut results: Vec<(String, f64)> = Vec::new();
    let mut sections: Vec<(String, Json)> = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {dir}: {e}"))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    for path in &entries {
        let text = std::fs::read_to_string(path).expect("read bench json");
        let doc = Json::parse(&text).expect("parse bench json");
        let bench = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        for r in doc.req("results").unwrap().as_arr().unwrap() {
            let id = r.req("id").unwrap().as_str().unwrap().to_string();
            let median = r.req("median_ns").unwrap().as_f64().unwrap();
            results.push((id, median));
        }
        sections.push((bench, doc));
    }

    let lookup =
        |id: &str| -> Option<f64> { results.iter().find(|(n, _)| n == id).map(|(_, v)| *v) };
    let mut speedups: Vec<(String, Json)> = Vec::new();
    for (label, serial, parallel) in [
        (
            "matmul_128",
            "tensor/matmul_serial_128x128",
            "tensor/matmul_parallel_128x128",
        ),
        (
            "matmul_256",
            "tensor/matmul_serial_256x256",
            "tensor/matmul_parallel_256x256",
        ),
        (
            "conv_b64_gemm",
            "conv_b64/gemm_serial",
            "conv_b64/gemm_parallel",
        ),
    ] {
        if let (Some(s), Some(p)) = (lookup(serial), lookup(parallel)) {
            speedups.push((
                label.to_string(),
                Json::obj([
                    ("serial_ns", Json::num(s)),
                    ("parallel_ns", Json::num(p)),
                    ("speedup", Json::num(s / p)),
                ]),
            ));
        }
    }

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let doc = Json::obj([
        (
            "note",
            Json::str(
                "Median per-iteration times from the vendored criterion shim; \
                 *_serial ids pin the single-threaded reference kernels, \
                 *_parallel the default dispatch (threaded + ILP-blocked). \
                 Regenerate with scripts/record_baseline.sh.",
            ),
        ),
        ("threads", Json::num(threads as f64)),
        ("speedups", Json::Obj(speedups)),
        ("benches", Json::Obj(sections)),
    ]);
    std::fs::write(&out_path, doc.to_string_pretty()).expect("write baseline");
    println!("wrote {out_path}");
}
