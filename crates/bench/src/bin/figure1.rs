//! Regenerates the paper's Figure 1 as a live pipeline trace.
//!
//! Figure 1 is a schematic (no data series): target model + training data
//! → softmax-instrumented model → footprint specifics of the faulty cases
//! → defect reasoning. This binary runs one real scenario and prints each
//! stage with the artifact it produced, which is the closest executable
//! analogue of the figure.

use deepmorph::prelude::*;

fn main() -> Result<(), DeepMorphError> {
    let defect = DefectSpec::insufficient_training_data(vec![0, 1, 2], 0.9);
    println!("DeepMorph pipeline trace (Figure 1 reproduction)");
    println!("=================================================");
    println!("target model      : LeNet (Tiny scale)");
    println!("dataset           : synth-digits (MNIST substitute)");
    println!("injected defect   : {defect}");
    println!();

    let scenario = Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
        .seed(11)
        .train_per_class(100)
        .test_per_class(30)
        .inject(defect)
        .build()?;

    println!("[stage 0] train target model on (injected) training data …");
    let outcome = scenario.run()?;
    println!(
        "          -> test accuracy {:.3}, {} faulty cases found",
        outcome.test_accuracy, outcome.faulty_count
    );
    println!();
    println!("[stage 1] build softmax-instrumented model");
    println!("          -> auxiliary softmax layers at probes:");
    for (label, acc) in outcome
        .report
        .probe_labels
        .iter()
        .zip(&outcome.report.probe_accuracies)
    {
        println!("             {label:<10} probe train accuracy {acc:.3}");
    }
    println!();
    println!("[stage 2] learn class execution patterns from training cases");
    println!(
        "          -> model health (final-stage separability): {:.3}",
        outcome.report.model_health
    );
    println!();
    println!("[stage 3] extract footprint specifics of the faulty cases");
    println!(
        "          -> {} footprints, {} probed layers each",
        outcome.report.num_cases,
        outcome.report.probe_labels.len()
    );
    let show = outcome.report.cases.iter().take(5);
    for case in show {
        println!(
            "             case {:>3}: true {} pred {} -> {} (scores ITD={:.2} UTD={:.2} SD={:.2})",
            case.case_index,
            case.true_label,
            case.predicted,
            case.assigned,
            case.score_distribution[0],
            case.score_distribution[1],
            case.score_distribution[2],
        );
    }
    if outcome.report.cases.len() > 5 {
        println!("             … {} more", outcome.report.cases.len() - 5);
    }
    println!();
    println!("[stage 4] defect reasoning");
    println!("          -> ratios: {}", outcome.report.ratios);
    match outcome.report.dominant() {
        Some(kind) => println!("          -> dominant defect: {kind} ({})", kind.name()),
        None => println!("          -> no dominant defect"),
    }
    Ok(())
}
