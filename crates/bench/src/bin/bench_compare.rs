//! Compares a fresh bench run against a committed baseline.
//!
//! Two modes over the per-binary JSON the criterion shim writes to
//! `CRITERION_JSON_DIR`:
//!
//! * **check** (default): every bench id present in both the fresh run and
//!   the baseline is compared; a median more than `--threshold` (default
//!   15%) slower than the baseline fails the process with exit code 1.
//!   This is the CI bench-smoke gate (`scripts/bench_compare.sh`).
//! * **`--write <path>`**: additionally records the fresh run — plus the
//!   speedups of the headline hot loops versus the baseline — as a
//!   workspace report (`BENCH_workspace.json` via
//!   `scripts/record_workspace.sh`).
//!
//! Usage:
//!   `bench_compare <criterion-json-dir> <baseline.json>
//!        [--threshold 0.15] [--write <out.json>]`
//!
//! Exit codes: `0` ok, `1` bench regression, `2` usage/IO error (with the
//! usage text on stderr — argument mistakes never panic).

use deepmorph_json::Json;

const USAGE: &str = "usage: bench_compare [<criterion-json-dir>] [<baseline.json>] \
                     [--threshold <fraction>] [--write <out.json>]\n\
                     defaults: target/criterion-json BENCH_baseline.json --threshold 0.15";

/// Headline comparisons recorded by `--write`:
/// `(label, fresh bench id, baseline bench id)`. The acceptance bar is
/// ≥ 1.4× on the warm conv_b64 forward+backward step and on a training
/// epoch versus the PR 1 (allocate-per-call) kernels; the baseline ids
/// measured exactly that work before the workspace landed.
const HEADLINE: &[(&str, &str, &str)] = &[
    (
        "conv_b64_step_warm",
        "steady/conv_b64_step_warm",
        "steady/conv_b64_step_warm",
    ),
    (
        "probe_epoch_warm",
        "steady/probe_epoch_warm",
        "steady/probe_epoch_warm",
    ),
    (
        "training_epoch_100_samples",
        "nn/lenet_one_epoch_100_samples",
        "nn/lenet_one_epoch_100_samples",
    ),
    (
        "conv_b64_forward_backward",
        "conv_b64/layer_forward_backward",
        "conv_b64/layer_forward_backward",
    ),
    (
        "conv_b64_forward",
        "conv_b64/layer_forward",
        "conv_b64/layer_forward",
    ),
];

fn load_results(path: &std::path::Path, into: &mut Vec<(String, f64)>) -> Result<(), String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let doc = Json::parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))?;
    collect_results(&doc, into);
    Ok(())
}

/// Pulls `(id, median_ns)` pairs out of either a raw shim report
/// (`{"results": [...]}`) or a merged baseline (`{"benches": {bin: {...}}}`).
/// Entries without a string `id` and numeric `median_ns` are skipped.
fn collect_results(doc: &Json, into: &mut Vec<(String, f64)>) {
    if let Some(results) = doc.get("results").and_then(Json::as_arr) {
        for r in results {
            let id = r.get("id").and_then(Json::as_str);
            let median = r.get("median_ns").and_then(Json::as_f64);
            if let (Some(id), Some(median)) = (id, median) {
                into.push((id.to_string(), median));
            }
        }
    }
    if let Some(Json::Obj(sections)) = doc.get("benches") {
        for (_, section) in sections {
            collect_results(section, into);
        }
    }
}

fn main() {
    match run() {
        Ok(regressions) if regressions => std::process::exit(1),
        Ok(_) => {}
        Err(message) => {
            eprintln!("bench_compare: {message}\n{USAGE}");
            std::process::exit(2);
        }
    }
}

/// Runs the comparison; `Ok(true)` means regressions were found (exit 1),
/// `Err` is a usage/IO problem (usage text + exit 2).
fn run() -> Result<bool, String> {
    let mut dir = "target/criterion-json".to_string();
    let mut baseline_path = "BENCH_baseline.json".to_string();
    let mut threshold = 0.15f64;
    let mut write_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    let mut positional = 0;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold = args
                    .next()
                    .ok_or("--threshold needs a value")?
                    .parse()
                    .map_err(|e| format!("--threshold must be a float: {e}"))?;
            }
            "--write" => {
                write_path = Some(args.next().ok_or("--write needs a path")?);
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(false);
            }
            _ => {
                match positional {
                    0 => dir = arg,
                    1 => baseline_path = arg,
                    _ => return Err(format!("unexpected argument `{arg}`")),
                }
                positional += 1;
            }
        }
    }

    // Fresh run: every *.json the criterion shim wrote.
    let mut fresh: Vec<(String, f64)> = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .map_err(|e| format!("cannot read {dir}: {e}"))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    if entries.is_empty() {
        return Err(format!("no bench json found in {dir}"));
    }
    for path in &entries {
        load_results(path, &mut fresh)?;
    }

    let mut baseline: Vec<(String, f64)> = Vec::new();
    load_results(std::path::Path::new(&baseline_path), &mut baseline)?;

    let lookup = |set: &[(String, f64)], id: &str| -> Option<f64> {
        set.iter().find(|(n, _)| n == id).map(|(_, v)| *v)
    };

    // Regression gate over the intersection of ids.
    let mut regressions = Vec::new();
    let mut compared = 0;
    for (id, base) in &baseline {
        let Some(now) = lookup(&fresh, id) else {
            continue;
        };
        compared += 1;
        let ratio = now / base;
        let marker = if ratio > 1.0 + threshold {
            " REGRESSION"
        } else {
            ""
        };
        println!("{id}: {base:.0} ns -> {now:.0} ns ({ratio:.2}x){marker}");
        if ratio > 1.0 + threshold {
            regressions.push((id.clone(), ratio));
        }
    }
    if compared == 0 {
        return Err(format!("no bench ids shared with {baseline_path}"));
    }

    if let Some(out_path) = write_path {
        let mut improvements: Vec<(String, Json)> = Vec::new();
        for (label, fresh_id, base_id) in HEADLINE {
            if let (Some(base), Some(now)) = (lookup(&baseline, base_id), lookup(&fresh, fresh_id))
            {
                improvements.push((
                    (*label).to_string(),
                    Json::obj([
                        ("bench_id", Json::str(*fresh_id)),
                        ("baseline_id", Json::str(*base_id)),
                        ("baseline_ns", Json::num(base)),
                        ("workspace_ns", Json::num(now)),
                        ("speedup", Json::num(base / now)),
                    ]),
                ));
            }
        }
        let steady: Vec<(String, Json)> = fresh
            .iter()
            .filter(|(id, _)| id.starts_with("steady/"))
            .map(|(id, ns)| (id.clone(), Json::num(*ns)))
            .collect();
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let doc = Json::obj([
            (
                "note",
                Json::str(
                    "Steady-state (workspace-arena) bench record: `improvements` compares \
                     this run against BENCH_baseline.json (the PR 1 allocate-per-call \
                     kernels); `steady_ns` are warm zero-allocation loop medians. \
                     Regenerate with scripts/record_workspace.sh.",
                ),
            ),
            ("threads", Json::num(threads as f64)),
            ("improvements", Json::Obj(improvements)),
            ("steady_ns", Json::Obj(steady)),
        ]);
        std::fs::write(&out_path, doc.to_string_pretty())
            .map_err(|e| format!("cannot write {out_path}: {e}"))?;
        println!("wrote {out_path}");
    }

    if !regressions.is_empty() {
        eprintln!(
            "bench regression(s) beyond {:.0}% vs {baseline_path}:",
            threshold * 100.0
        );
        for (id, ratio) in &regressions {
            eprintln!("  {id}: {ratio:.2}x");
        }
        return Ok(true);
    }
    println!(
        "bench compare ok: {compared} ids within {:.0}%",
        threshold * 100.0
    );
    Ok(false)
}
