//! Compares a fresh bench run against a committed baseline.
//!
//! Two modes over the per-binary JSON the criterion shim writes to
//! `CRITERION_JSON_DIR`:
//!
//! * **check** (default): every bench id present in both the fresh run and
//!   the baseline is compared; a median more than `--threshold` (default
//!   15%) slower than the baseline fails the process with exit code 1.
//!   This is the CI bench-smoke gate (`scripts/bench_compare.sh`).
//! * **`--write <path>`**: additionally records the fresh run — plus the
//!   speedups of the headline hot loops versus the baseline — as a
//!   workspace report (`BENCH_workspace.json` via
//!   `scripts/record_workspace.sh`).
//!
//! Usage:
//!   `bench_compare <criterion-json-dir> <baseline.json>
//!        [--threshold 0.15] [--write <out.json>]`

use deepmorph_json::Json;

/// Headline comparisons recorded by `--write`:
/// `(label, fresh bench id, baseline bench id)`. The acceptance bar is
/// ≥ 1.4× on the warm conv_b64 forward+backward step and on a training
/// epoch versus the PR 1 (allocate-per-call) kernels; the baseline ids
/// measured exactly that work before the workspace landed.
const HEADLINE: &[(&str, &str, &str)] = &[
    (
        "conv_b64_step_warm",
        "steady/conv_b64_step_warm",
        "steady/conv_b64_step_warm",
    ),
    (
        "probe_epoch_warm",
        "steady/probe_epoch_warm",
        "steady/probe_epoch_warm",
    ),
    (
        "training_epoch_100_samples",
        "nn/lenet_one_epoch_100_samples",
        "nn/lenet_one_epoch_100_samples",
    ),
    (
        "conv_b64_forward_backward",
        "conv_b64/layer_forward_backward",
        "conv_b64/layer_forward_backward",
    ),
    (
        "conv_b64_forward",
        "conv_b64/layer_forward",
        "conv_b64/layer_forward",
    ),
];

fn load_results(path: &std::path::Path, into: &mut Vec<(String, f64)>) {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let doc = Json::parse(&text).expect("parse bench json");
    collect_results(&doc, into);
}

/// Pulls `(id, median_ns)` pairs out of either a raw shim report
/// (`{"results": [...]}`) or a merged baseline (`{"benches": {bin: {...}}}`).
fn collect_results(doc: &Json, into: &mut Vec<(String, f64)>) {
    if let Some(results) = doc.get("results").and_then(Json::as_arr) {
        for r in results {
            let id = r.req("id").unwrap().as_str().unwrap().to_string();
            let median = r.req("median_ns").unwrap().as_f64().unwrap();
            into.push((id, median));
        }
    }
    if let Some(Json::Obj(sections)) = doc.get("benches") {
        for (_, section) in sections {
            collect_results(section, into);
        }
    }
}

fn main() {
    let mut dir = "target/criterion-json".to_string();
    let mut baseline_path = "BENCH_baseline.json".to_string();
    let mut threshold = 0.15f64;
    let mut write_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    let mut positional = 0;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold = args
                    .next()
                    .expect("--threshold needs a value")
                    .parse()
                    .expect("threshold must be a float");
            }
            "--write" => write_path = Some(args.next().expect("--write needs a path")),
            _ => {
                match positional {
                    0 => dir = arg,
                    1 => baseline_path = arg,
                    _ => panic!("unexpected argument {arg}"),
                }
                positional += 1;
            }
        }
    }

    // Fresh run: every *.json the criterion shim wrote.
    let mut fresh: Vec<(String, f64)> = Vec::new();
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("cannot read {dir}: {e}"))
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "no bench json found in {dir}");
    for path in &entries {
        load_results(path, &mut fresh);
    }

    let mut baseline: Vec<(String, f64)> = Vec::new();
    load_results(std::path::Path::new(&baseline_path), &mut baseline);

    let lookup = |set: &[(String, f64)], id: &str| -> Option<f64> {
        set.iter().find(|(n, _)| n == id).map(|(_, v)| *v)
    };

    // Regression gate over the intersection of ids.
    let mut regressions = Vec::new();
    let mut compared = 0;
    for (id, base) in &baseline {
        let Some(now) = lookup(&fresh, id) else {
            continue;
        };
        compared += 1;
        let ratio = now / base;
        let marker = if ratio > 1.0 + threshold {
            " REGRESSION"
        } else {
            ""
        };
        println!("{id}: {base:.0} ns -> {now:.0} ns ({ratio:.2}x){marker}");
        if ratio > 1.0 + threshold {
            regressions.push((id.clone(), ratio));
        }
    }
    assert!(compared > 0, "no bench ids shared with {baseline_path}");

    if let Some(out_path) = write_path {
        let mut improvements: Vec<(String, Json)> = Vec::new();
        for (label, fresh_id, base_id) in HEADLINE {
            if let (Some(base), Some(now)) = (lookup(&baseline, base_id), lookup(&fresh, fresh_id))
            {
                improvements.push((
                    (*label).to_string(),
                    Json::obj([
                        ("bench_id", Json::str(*fresh_id)),
                        ("baseline_id", Json::str(*base_id)),
                        ("baseline_ns", Json::num(base)),
                        ("workspace_ns", Json::num(now)),
                        ("speedup", Json::num(base / now)),
                    ]),
                ));
            }
        }
        let steady: Vec<(String, Json)> = fresh
            .iter()
            .filter(|(id, _)| id.starts_with("steady/"))
            .map(|(id, ns)| (id.clone(), Json::num(*ns)))
            .collect();
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let doc = Json::obj([
            (
                "note",
                Json::str(
                    "Steady-state (workspace-arena) bench record: `improvements` compares \
                     this run against BENCH_baseline.json (the PR 1 allocate-per-call \
                     kernels); `steady_ns` are warm zero-allocation loop medians. \
                     Regenerate with scripts/record_workspace.sh.",
                ),
            ),
            ("threads", Json::num(threads as f64)),
            ("improvements", Json::Obj(improvements)),
            ("steady_ns", Json::Obj(steady)),
        ]);
        std::fs::write(&out_path, doc.to_string_pretty()).expect("write workspace report");
        println!("wrote {out_path}");
    }

    if !regressions.is_empty() {
        eprintln!(
            "bench regression(s) beyond {:.0}% vs {baseline_path}:",
            threshold * 100.0
        );
        for (id, ratio) in &regressions {
            eprintln!("  {id}: {ratio:.2}x");
        }
        std::process::exit(1);
    }
    println!(
        "bench compare ok: {compared} ids within {:.0}%",
        threshold * 100.0
    );
}
