//! CI chaos smoke: a small deterministic fault storm against a live
//! server, asserting the zero-loss / zero-corruption bar.
//!
//! ```text
//! cargo run --release -p deepmorph-bench --bin chaos_smoke
//! ```
//!
//! The storm is seeded, so a failure reproduces exactly; the harness
//! lives in [`deepmorph_bench::chaos`] and is shared with the chaos
//! phase of `serve_bench`.

use deepmorph_bench::chaos;

fn main() {
    let config = chaos::ChaosConfig::smoke();
    let result = chaos::run(&config);
    println!(
        "chaos smoke: {} requests through {} injected faults ({} worker panics contained, \
         {} wire requests incl. retries) in {:.0} ms — {} lost, {} corrupted",
        result.requests,
        result.faults_injected,
        result.worker_panics,
        result.server_requests,
        result.wall.as_secs_f64() * 1e3,
        result.lost,
        result.corrupted
    );
    result.assert_zero_loss();
    println!("chaos smoke OK");
}
