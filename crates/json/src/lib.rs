//! A small, dependency-free JSON library.
//!
//! `serde`/`serde_json` are not available offline, so report serialization,
//! the bench baseline file, and experiment artifacts use this value-model
//! JSON instead: [`Json`] plus [`Json::parse`] and
//! [`Json::to_string_pretty`]. Object key order is preserved (insertion
//! order), numbers are `f64`, and writing uses Rust's shortest round-trip
//! float formatting.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, preserving insertion order.
    Obj(Vec<(String, Json)>),
}

/// Parse or access failure, with a byte offset for parse errors.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input (0 for access errors).
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, JsonError>;

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number value.
    pub fn num(v: impl Into<f64>) -> Json {
        Json::Num(v.into())
    }

    /// Builds a number value from a `usize` (counts, indexes). `usize`
    /// has no lossless `Into<f64>`, so the workspace's count-heavy
    /// documents (sweep reports, store statistics) use this instead of
    /// scattering `as f64` casts.
    pub fn usize(v: usize) -> Json {
        Json::Num(v as f64)
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object lookup that errors with the key name when missing.
    pub fn req(&self, key: &str) -> Result<&Json> {
        self.get(key).ok_or_else(|| JsonError {
            message: format!("missing key '{key}'"),
            offset: 0,
        })
    }

    /// The value as `f64`, if a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `usize`, if a non-negative integral number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as usize),
            _ => None,
        }
    }

    /// The value as `&str`, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as `bool`, if a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with the byte offset of the first problem.
    pub fn parse(input: &str) -> Result<Json> {
        let bytes = input.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing data"));
        }
        Ok(value)
    }

    /// Compact serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty (2-space indented) serialization.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                write_escaped(out, &pairs[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                pairs[i].1.write(out, indent, depth + 1);
            }),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_string_compact())
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_num(out: &mut String, v: f64) {
    if v.is_finite() {
        if v.fract() == 0.0 && v.abs() < 1e15 {
            out.push_str(&format!("{}", v as i64));
        } else {
            out.push_str(&format!("{v}"));
        }
    } else {
        // JSON has no Inf/NaN; mirror serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's documents; map them to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Sorts object keys recursively — handy for order-insensitive comparisons
/// in tests.
pub fn normalized(value: &Json) -> Json {
    match value {
        Json::Arr(items) => Json::Arr(items.iter().map(normalized).collect()),
        Json::Obj(pairs) => {
            let map: BTreeMap<&String, Json> =
                pairs.iter().map(|(k, v)| (k, normalized(v))).collect();
            Json::Obj(map.into_iter().map(|(k, v)| (k.clone(), v)).collect())
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_documents() {
        let doc = Json::obj([
            ("name", Json::str("LeNet")),
            ("ratios", Json::arr([Json::num(0.5), Json::num(0.25)])),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("count", Json::num(42.0)),
        ]);
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn floats_round_trip_exactly() {
        for v in [0.1f64, -1.5e-7, 3.0, f64::from(0.3f32), 1e20] {
            let text = Json::Num(v).to_string_compact();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back, v, "text {text}");
        }
    }

    #[test]
    fn escapes_round_trip() {
        let s = Json::str("quote \" backslash \\ newline \n tab \t unicode é");
        let text = s.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), s);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "nul", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn accessors_and_req() {
        let doc = Json::parse(r#"{"a": 3, "b": "x", "c": [1, true]}"#).unwrap();
        assert_eq!(doc.req("a").unwrap().as_usize(), Some(3));
        assert_eq!(doc.get("b").unwrap().as_str(), Some("x"));
        assert_eq!(doc.get("c").unwrap().as_arr().unwrap().len(), 2);
        assert!(doc.req("missing").is_err());
        assert_eq!(
            doc.get("c").unwrap().as_arr().unwrap()[1].as_bool(),
            Some(true)
        );
    }

    #[test]
    fn normalized_sorts_keys() {
        let a = Json::parse(r#"{"b": 1, "a": {"z": 1, "y": 2}}"#).unwrap();
        let b = Json::parse(r#"{"a": {"y": 2, "z": 1}, "b": 1}"#).unwrap();
        assert_ne!(a, b);
        assert_eq!(normalized(&a), normalized(&b));
    }

    #[test]
    fn nonfinite_numbers_serialize_as_null() {
        assert_eq!(Json::num(f64::NAN).to_string_compact(), "null");
    }
}
