//! Data-parallel helpers over a persistent worker pool.
//!
//! The container this workspace builds in has no crates.io access, so
//! `rayon` is unavailable; this crate provides the small set of
//! deterministic-order primitives the tensor/nn/core hot paths need:
//!
//! * [`par_chunks_mut`] — split a mutable buffer into contiguous chunks and
//!   process them on worker threads (the backbone of the parallel matmul,
//!   `im2col`, pooling, and batch kernels),
//! * [`par_chunks2_mut`] — the two-buffer lockstep variant,
//! * [`par_map`] — an **order-preserving** parallel map of `0..n`
//!   (per-probe training),
//! * [`par_ranges`] / [`join`] — range fan-out and two-way concurrency.
//!
//! Work is always split into *contiguous* index blocks; which thread runs a
//! block never affects the data it touches, so any kernel whose per-element
//! computation is independent produces bitwise-identical results to its
//! serial counterpart.
//!
//! # Why a persistent pool
//!
//! On this project's sandboxed build/CI machines a `std::thread` spawn
//! costs ~1 ms and a condvar wakeup ~100 µs (hundreds of times their
//! bare-metal cost), so scoped per-call threads would make every kernel
//! *slower*. Instead, worker threads are spawned once on first use and then
//! claim blocks of each submitted batch via an atomic cursor. Workers spin
//! briefly between batches (cheap: they occupy an otherwise-idle core
//! during back-to-back kernel calls) and park on a condvar when no work
//! arrives; a parked worker that wakes late simply finds fewer unclaimed
//! blocks, while the submitting thread — which always participates — has
//! picked up the rest.
//!
//! Thread count comes from [`max_threads`]: the `DEEPMORPH_THREADS` env var
//! if set, otherwise [`std::thread::available_parallelism`]; the pool size
//! is fixed at first use. Nested `par_*` calls (from inside a worker) and
//! concurrent batches (from a second user thread while one is in flight)
//! run inline serially rather than oversubscribing cores.

use std::cell::Cell;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

thread_local! {
    /// Set on pool workers (and during inline batch execution); nested
    /// `par_*` calls then run serially instead of oversubscribing cores.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

fn run_as_worker<R>(f: impl FnOnce() -> R) -> R {
    let prev = IN_WORKER.with(|w| w.replace(true));
    let out = f();
    IN_WORKER.with(|w| w.set(prev));
    out
}

/// Spin iterations a worker burns waiting for the next batch before
/// parking. Back-to-back kernel calls (training loops, benches) land well
/// inside this window, so steady-state dispatch costs only a few atomic
/// operations.
const WORKER_SPIN: usize = 200_000;

/// Blocks per participant: oversplitting lets a worker that wakes mid-batch
/// still claim useful work, and improves load balance for ragged chunks.
const BLOCKS_PER_THREAD: usize = 4;

/// One submitted batch: `run(block_index)` for `0..total`, claimed via an
/// atomic cursor. The closure reference is lifetime-erased; soundness
/// argument in [`Pool::run_batch`].
struct Batch {
    run: *const (dyn Fn(usize) + Sync),
    next: AtomicUsize,
    total: usize,
    done: AtomicUsize,
    panicked: AtomicBool,
}

// SAFETY: `run` points at a `Sync` closure that outlives the batch (the
// submitter keeps it alive until `done == total`), and all counter fields
// are atomics.
unsafe impl Send for Batch {}
// SAFETY: shared access touches only the atomic counters and the closure
// behind `run`, which is `Sync` by the field's own bound.
unsafe impl Sync for Batch {}

impl Batch {
    /// Claims and runs blocks until the cursor is exhausted.
    fn participate(&self) {
        loop {
            let block = self.next.fetch_add(1, Ordering::Relaxed);
            if block >= self.total {
                return;
            }
            // SAFETY: the submitter keeps the closure alive until every
            // claimed block has bumped `done` (see `run_batch`).
            let run = unsafe { &*self.run };
            if catch_unwind(AssertUnwindSafe(|| run(block))).is_err() {
                self.panicked.store(true, Ordering::Release);
            }
            self.done.fetch_add(1, Ordering::Release);
        }
    }
}

struct Shared {
    /// Current batch (points into the submitting thread's stack; null when
    /// no batch is in flight). The `entered` counter keeps it alive: the
    /// submitter nulls the pointer and waits for `entered == 0` before its
    /// stack frame dies. No allocation crosses threads — on the sandboxed
    /// build machines a cross-thread `free` contends the malloc arena
    /// lock, which is a millisecond-class futex there.
    batch: AtomicPtr<Batch>,
    /// Number of workers currently between "about to read `batch`" and
    /// "done touching it".
    entered: AtomicUsize,
    /// Bumped on publish; workers spin on it.
    generation: AtomicU64,
    /// Mirror of `generation` guarded by `park_lock`, for parking.
    park: Mutex<u64>,
    park_cv: Condvar,
    sleepers: AtomicUsize,
}

struct Pool {
    shared: Arc<Shared>,
    workers: usize,
    /// Held for the duration of one batch; `try_lock` failure means another
    /// thread's batch is in flight and the caller runs inline instead.
    active: Mutex<()>,
}

fn worker_loop(shared: Arc<Shared>) {
    IN_WORKER.with(|w| w.set(true));
    let mut seen = 0u64;
    loop {
        // Spin, then park, until the generation moves.
        let mut spins = 0usize;
        loop {
            let g = shared.generation.load(Ordering::Acquire);
            if g != seen {
                seen = g;
                break;
            }
            spins += 1;
            if spins < WORKER_SPIN {
                std::hint::spin_loop();
                continue;
            }
            // ORDERING: Relaxed suffices — the publisher reads `sleepers`
            // while holding `park_lock`, and any increment that matters
            // (one whose worker will actually wait) happens-before this
            // worker's own lock acquisition, hence before the publisher's.
            // A worker that increments but loses the race observes the
            // fresh generation under the lock and never waits.
            shared.sleepers.fetch_add(1, Ordering::Relaxed);
            let mut guard = shared.park.lock().expect("park lock");
            // `park` always mirrors the latest published generation (the
            // publisher updates it under this lock on every batch), so
            // waiting on it can neither miss a wakeup nor observe a stale
            // generation.
            while *guard == seen {
                guard = shared.park_cv.wait(guard).expect("park wait");
            }
            seen = *guard;
            drop(guard);
            // ORDERING: Relaxed — see the fetch_add above; the counter
            // only gates a condvar notify, never data visibility.
            shared.sleepers.fetch_sub(1, Ordering::Relaxed);
            break;
        }
        // ORDERING: SeqCst store-load fence (Dekker). This increment and
        // the `batch` load below mirror the submitter's null-store →
        // `entered`-load retire sequence; all four must be SeqCst so that
        // either the submitter sees `entered > 0` and waits, or this
        // worker sees null. Release/Acquire cannot order a store before a
        // later load, so nothing weaker closes the race.
        shared.entered.fetch_add(1, Ordering::SeqCst);
        // ORDERING: SeqCst — the load half of the Dekker pattern above:
        // if the submitter saw entered == 0, this load is ordered after
        // its null-store and must see null.
        let ptr = shared.batch.load(Ordering::SeqCst);
        if !ptr.is_null() {
            // SAFETY: `entered` was incremented before the load, so the
            // submitter cannot retire the batch until this worker leaves.
            unsafe { (*ptr).participate() };
        }
        // ORDERING: Release — pairs with the submitter's SeqCst spin on
        // `entered == 0`, ordering this worker's last touch of the batch
        // before the submitter retires it. The departure is not part of
        // the Dekker race, so the full fence is unnecessary here.
        shared.entered.fetch_sub(1, Ordering::Release);
    }
}

impl Pool {
    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| {
            let workers = max_threads().saturating_sub(1);
            let shared = Arc::new(Shared {
                batch: AtomicPtr::new(std::ptr::null_mut()),
                entered: AtomicUsize::new(0),
                generation: AtomicU64::new(0),
                park: Mutex::new(0),
                park_cv: Condvar::new(),
                sleepers: AtomicUsize::new(0),
            });
            for i in 0..workers {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("deepmorph-par-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn pool worker");
            }
            Pool {
                shared,
                workers,
                active: Mutex::new(()),
            }
        })
    }

    /// Runs `run(0) … run(blocks-1)` across the pool, returning once all
    /// blocks completed. Falls back to an inline serial loop when the pool
    /// has no workers or another batch is in flight.
    ///
    /// # Panics
    ///
    /// Panics if any block panicked (after every block has finished, so
    /// borrowed data is never left aliased by a still-running worker).
    fn run_batch(&self, blocks: usize, run: &(dyn Fn(usize) + Sync)) {
        if blocks == 0 {
            return;
        }
        let inline = |run: &(dyn Fn(usize) + Sync)| {
            run_as_worker(|| {
                for b in 0..blocks {
                    run(b);
                }
            })
        };
        if self.workers == 0 || blocks == 1 {
            return inline(run);
        }
        // One batch at a time; a second concurrent submitter runs inline.
        let Ok(_active) = self.active.try_lock() else {
            return inline(run);
        };
        // SAFETY: lifetime erasure — the `Batch` lives on this stack frame
        // and holds a raw pointer to `run`, which only lives for this
        // call. Workers reach it exclusively through the `batch` pointer
        // slot, bracketed by the `entered` counter; this function nulls
        // the slot and waits for both `done == total` and `entered == 0`
        // before returning, so no worker can touch the batch or the
        // closure after either dies. Nothing here is heap-allocated, so no
        // `free` ever happens on a worker thread (cross-thread frees
        // contend the malloc arena lock, which is millisecond-class on the
        // sandboxed build machines).
        let erased = unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync + '_),
                *const (dyn Fn(usize) + Sync + 'static),
            >(run as *const _)
        };
        let batch = Batch {
            run: erased,
            next: AtomicUsize::new(0),
            total: blocks,
            done: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
        };
        // ORDERING: Release publishes the fully initialized `Batch` to
        // any worker whose SeqCst load observes the pointer. Publishing
        // is not the racy half of the retire protocol, so SeqCst buys
        // nothing here.
        self.shared
            .batch
            .store(&batch as *const Batch as *mut Batch, Ordering::Release);
        let generation = self.shared.generation.fetch_add(1, Ordering::Release) + 1;
        // Mirror the generation under the park lock on *every* publish —
        // workers park against this value, so it must never lag the atomic
        // (a stale mirror would make the next park return immediately and
        // loop). Notify only when someone is actually parked.
        {
            let mut guard = self.shared.park.lock().expect("park lock");
            *guard = generation;
            // ORDERING: Relaxed — `park_lock` (held here and spanning
            // every parking worker's increment-then-wait) provides the
            // happens-before; see the worker-side ORDERING note.
            if self.shared.sleepers.load(Ordering::Relaxed) > 0 {
                self.shared.park_cv.notify_all();
            }
        }
        // The submitting thread works too, then spin-waits for the tail
        // blocks in flight on workers. Pure spinning (no `yield_now`): on
        // the sandboxed build machines a yield can deschedule this thread
        // for milliseconds, dwarfing the tail it is waiting for.
        run_as_worker(|| batch.participate());
        while batch.done.load(Ordering::Acquire) < blocks {
            std::hint::spin_loop();
        }
        // Retire the batch: unpublish, then wait for any worker still in
        // its read-participate window before the stack frame goes away.
        //
        // ORDERING: SeqCst store-load fence (Dekker) — this null-store
        // and the `entered` spin-load below mirror the worker's SeqCst
        // increment-then-load; with anything weaker, this thread's load
        // could be satisfied before its own null-store becomes visible,
        // letting a worker slip in (entered 0→1, loads the stale pointer)
        // while this frame is being torn down.
        self.shared
            .batch
            .store(std::ptr::null_mut(), Ordering::SeqCst);
        // ORDERING: SeqCst — the load half of the Dekker fence above; it
        // also carries the acquire edge pairing with the worker's Release
        // departure decrement, so the batch's memory can safely die.
        while self.shared.entered.load(Ordering::SeqCst) > 0 {
            std::hint::spin_loop();
        }
        assert!(
            !batch.panicked.load(Ordering::Acquire),
            "parallel worker panicked"
        );
    }
}

/// Maximum worker threads used by the `par_*` helpers.
///
/// Reads `DEEPMORPH_THREADS` (values `< 1` are treated as 1), falling back
/// to the machine's available parallelism. Returns 1 on threads that are
/// already executing a parallel region, so nesting stays serial.
///
/// The configured value is computed once and cached:
/// [`std::thread::available_parallelism`] re-reads cgroup files on every
/// call, which costs ~3 ms on the sandboxed build machines — far more
/// than the kernels this crate parallelizes.
pub fn max_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        if let Ok(v) = std::env::var("DEEPMORPH_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                return n.max(1);
            }
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Splits `0..n` into at most `parts` contiguous ranges of near-equal size.
pub fn split_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    (0..parts).filter_map(|i| nth_range(n, parts, i)).collect()
}

/// The `i`-th range of the [`split_ranges`] partition, computed without
/// allocating (`None` for an empty slot). The dispatch hot paths use this
/// directly so submitting a batch performs no heap allocation — a
/// requirement of the zero-allocation steady state the tensor workspace
/// provides (`tests/alloc_regression.rs`).
fn nth_range(n: usize, parts: usize, i: usize) -> Option<Range<usize>> {
    let base = n / parts;
    let rem = n % parts;
    let len = base + usize::from(i < rem);
    if len == 0 {
        return None;
    }
    let start = i * base + i.min(rem);
    Some(start..start + len)
}

/// How many blocks to split `n_items` into for the current pool.
fn block_count(n_items: usize) -> usize {
    (max_threads() * BLOCKS_PER_THREAD).min(n_items)
}

/// Raw pointer wrapper so disjoint sub-slices can be re-materialized inside
/// `Sync` block closures. Soundness relies on blocks covering disjoint
/// index ranges, which `split_ranges` guarantees.
struct SendPtr<T>(*mut T);

// SAFETY: the wrapper is only constructed over slices whose blocks are
// handed to workers as disjoint index ranges, so sending the base
// pointer across threads cannot create aliased &mut access.
unsafe impl<T: Send> Send for SendPtr<T> {}
// SAFETY: shared references to the wrapper only yield the raw pointer;
// dereferencing stays confined to each block's disjoint range.
unsafe impl<T: Send> Sync for SendPtr<T> {}

/// Runs `a` and `b` concurrently, returning both results.
pub fn join<RA: Send, RB: Send>(
    a: impl FnOnce() -> RA + Send,
    b: impl FnOnce() -> RB + Send,
) -> (RA, RB) {
    if max_threads() < 2 {
        return (a(), b());
    }
    let slot_a: Mutex<Option<RA>> = Mutex::new(None);
    let slot_b: Mutex<Option<RB>> = Mutex::new(None);
    let cell_a = Mutex::new(Some(a));
    let cell_b = Mutex::new(Some(b));
    Pool::global().run_batch(2, &|i| {
        if i == 0 {
            let f = cell_a
                .lock()
                .expect("join slot")
                .take()
                .expect("join runs once");
            *slot_a.lock().expect("join result") = Some(f());
        } else {
            let f = cell_b
                .lock()
                .expect("join slot")
                .take()
                .expect("join runs once");
            *slot_b.lock().expect("join result") = Some(f());
        }
    });
    (
        slot_a.into_inner().expect("join result").expect("join ran"),
        slot_b.into_inner().expect("join result").expect("join ran"),
    )
}

/// Splits `data` into contiguous chunks of `chunk_len` elements and calls
/// `f(chunk_index, chunk)` for each, distributing chunks over the pool.
///
/// `f` must only depend on its own chunk; chunk boundaries and contents are
/// identical to a serial `data.chunks_mut(chunk_len).enumerate()` loop.
///
/// # Panics
///
/// Panics if `chunk_len` is zero or `f` panics.
pub fn par_chunks_mut<T: Send, F>(data: &mut [T], chunk_len: usize, f: F)
where
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "par_chunks_mut: chunk_len must be positive");
    let len = data.len();
    let n_chunks = len.div_ceil(chunk_len);
    if max_threads() <= 1 || n_chunks <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let parts = block_count(n_chunks);
    let base = SendPtr(data.as_mut_ptr());
    Pool::global().run_batch(parts, &|bi| {
        let base = &base;
        let Some(range) = nth_range(n_chunks, parts, bi) else {
            return;
        };
        for chunk_idx in range {
            let start = chunk_idx * chunk_len;
            let end = (start + chunk_len).min(len);
            // SAFETY: blocks hold disjoint chunk indexes, so these slices
            // never alias; `start..end` is in bounds by construction.
            let chunk = unsafe { std::slice::from_raw_parts_mut(base.0.add(start), end - start) };
            f(chunk_idx, chunk);
        }
    });
}

/// Like [`par_chunks_mut`], but splits two buffers in lockstep: chunk `i`
/// of `a` (length `a_chunk`) is processed together with chunk `i` of `b`
/// (length `b_chunk`). Used by kernels that fill a value buffer and an
/// index buffer side by side (e.g. max-pooling's output + argmax).
///
/// # Panics
///
/// Panics if either chunk length is zero, the buffers describe different
/// chunk counts, or `f` panics.
pub fn par_chunks2_mut<T: Send, U: Send, F>(
    a: &mut [T],
    a_chunk: usize,
    b: &mut [U],
    b_chunk: usize,
    f: F,
) where
    F: Fn(usize, &mut [T], &mut [U]) + Sync,
{
    assert!(
        a_chunk > 0 && b_chunk > 0,
        "par_chunks2_mut: chunk lengths must be positive"
    );
    let (a_len, b_len) = (a.len(), b.len());
    let n_chunks = a_len.div_ceil(a_chunk);
    assert_eq!(
        n_chunks,
        b_len.div_ceil(b_chunk),
        "par_chunks2_mut: buffers disagree on chunk count"
    );
    if max_threads() <= 1 || n_chunks <= 1 {
        for (i, (ca, cb)) in a.chunks_mut(a_chunk).zip(b.chunks_mut(b_chunk)).enumerate() {
            f(i, ca, cb);
        }
        return;
    }
    let parts = block_count(n_chunks);
    let base_a = SendPtr(a.as_mut_ptr());
    let base_b = SendPtr(b.as_mut_ptr());
    Pool::global().run_batch(parts, &|bi| {
        let (base_a, base_b) = (&base_a, &base_b);
        let Some(range) = nth_range(n_chunks, parts, bi) else {
            return;
        };
        for chunk_idx in range {
            let (sa, sb) = (chunk_idx * a_chunk, chunk_idx * b_chunk);
            let (ea, eb) = ((sa + a_chunk).min(a_len), (sb + b_chunk).min(b_len));
            // SAFETY: disjoint chunk indexes per block ⇒ no aliasing; both
            // ranges are in bounds by construction.
            let (ca, cb) = unsafe {
                (
                    std::slice::from_raw_parts_mut(base_a.0.add(sa), ea - sa),
                    std::slice::from_raw_parts_mut(base_b.0.add(sb), eb - sb),
                )
            };
            f(chunk_idx, ca, cb);
        }
    });
}

/// Computes `[f(0), f(1), …, f(n-1)]` in parallel, preserving order.
pub fn par_map<U: Send, F>(n: usize, f: F) -> Vec<U>
where
    F: Fn(usize) -> U + Sync,
{
    if max_threads() <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
    par_chunks_mut(&mut slots, 1, |i, slot| slot[0] = Some(f(i)));
    slots
        .into_iter()
        .map(|s| s.expect("par_map filled every slot"))
        .collect()
}

/// Runs `f` over each range of a contiguous split of `0..n` in parallel.
///
/// Useful when the work writes through interior mutability or only reads:
/// each invocation receives a disjoint range, assigned in order.
pub fn par_ranges<F>(n: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    if max_threads() <= 1 {
        f(0..n);
        return;
    }
    let parts = block_count(n);
    Pool::global().run_batch(parts, &|bi| {
        if let Some(range) = nth_range(n, parts, bi) {
            f(range);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_covers_exactly() {
        for n in [0usize, 1, 2, 7, 64, 65] {
            for parts in [1usize, 2, 3, 8] {
                let ranges = split_ranges(n, parts);
                let total: usize = ranges.iter().map(|r| r.end - r.start).sum();
                assert_eq!(total, n, "n={n} parts={parts}");
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    expect = r.end;
                }
            }
        }
    }

    #[test]
    fn par_chunks_mut_matches_serial() {
        let mut a: Vec<u64> = (0..1003).collect();
        let mut b = a.clone();
        for (i, chunk) in a.chunks_mut(10).enumerate() {
            for v in chunk.iter_mut() {
                *v = v.wrapping_mul(i as u64 + 1);
            }
        }
        par_chunks_mut(&mut b, 10, |i, chunk| {
            for v in chunk.iter_mut() {
                *v = v.wrapping_mul(i as u64 + 1);
            }
        });
        assert_eq!(a, b);
    }

    #[test]
    fn par_chunks2_mut_stays_in_lockstep() {
        let mut vals: Vec<f32> = (0..120).map(|i| i as f32).collect();
        let mut idxs: Vec<usize> = vec![0; 40];
        par_chunks2_mut(&mut vals, 3, &mut idxs, 1, |i, va, ib| {
            ib[0] = i;
            for v in va.iter_mut() {
                *v += i as f32;
            }
        });
        assert_eq!(idxs, (0..40).collect::<Vec<_>>());
        assert_eq!(vals[3], 3.0 + 1.0);
        assert_eq!(vals[119], 119.0 + 39.0);
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 21 * 2, || "ok");
        assert_eq!(a, 42);
        assert_eq!(b, "ok");
    }

    #[test]
    fn par_ranges_disjoint_cover() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let hits: Vec<AtomicUsize> = (0..57).map(|_| AtomicUsize::new(0)).collect();
        par_ranges(57, |r| {
            for i in r {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn nested_parallel_regions_run_serially() {
        // Inside a par_ranges block, max_threads() must report 1 so nested
        // kernels don't try to re-enter the pool.
        use std::sync::atomic::{AtomicBool, Ordering};
        let saw_nested_parallel = AtomicBool::new(false);
        par_ranges(8, |_r| {
            if max_threads() != 1 {
                saw_nested_parallel.store(true, Ordering::Relaxed);
            }
            // A nested call must still complete correctly.
            let out = par_map(4, |i| i + 1);
            assert_eq!(out, vec![1, 2, 3, 4]);
        });
        assert!(!saw_nested_parallel.load(Ordering::Relaxed));
    }

    #[test]
    fn many_small_batches_complete() {
        for round in 0..200 {
            let mut data = vec![round as u64; 64];
            par_chunks_mut(&mut data, 4, |i, c| {
                for v in c.iter_mut() {
                    *v += i as u64;
                }
            });
            assert_eq!(data[63], round as u64 + 15);
        }
    }
}
