//! Minimal readiness-driven I/O primitives for the DeepMorph serving stack.
//!
//! The serving layer (`deepmorph-serve`) holds tens of thousands of mostly
//! idle connections on a fixed pool of event-loop threads. This crate provides
//! the raw building blocks it needs without pulling in mio/tokio (the build
//! environment has no network access to crates.io):
//!
//! - [`Poller`]: a thin safe wrapper over Linux `epoll` (level-triggered),
//!   bound directly via `extern "C"` declarations against libc symbols.
//! - [`Waker`]: a nonblocking `eventfd` that other threads write to in order
//!   to pull a sleeping [`Poller::wait`] call out of the kernel.
//! - [`raise_nofile_limit`]: lifts `RLIMIT_NOFILE` so a connection storm does
//!   not die on `EMFILE` at a few thousand sockets.
//! - [`boost_listen_backlog`] / [`set_socket_buffers`]: socket knobs used by
//!   the storm bench (std's listener backlog of 128 drops SYNs long before
//!   10k concurrent connects land).
//!
//! Everything here is Linux-specific, as is the container the project targets.
//! The wrappers own their fds through [`OwnedFd`], so teardown is automatic.

use std::io;
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::time::Duration;

/// Raw libc bindings used by this crate. Kept private; the safe wrappers
/// below are the crate surface.
mod sys {
    use std::os::raw::{c_int, c_uint, c_void};

    /// Mirrors `struct epoll_event` on x86_64 Linux, where the kernel ABI
    /// packs the 8-byte data field directly after the 4-byte mask.
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    /// Mirrors `struct rlimit` (64-bit fields on this target).
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct Rlimit {
        pub cur: u64,
        pub max: u64,
    }

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    pub const RLIMIT_NOFILE: c_int = 7;

    pub const SOL_SOCKET: c_int = 1;
    pub const SO_SNDBUF: c_int = 7;
    pub const SO_RCVBUF: c_int = 8;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        pub fn listen(sockfd: c_int, backlog: c_int) -> c_int;
        pub fn setsockopt(
            sockfd: c_int,
            level: c_int,
            optname: c_int,
            optval: *const c_void,
            optlen: u32,
        ) -> c_int;
        pub fn getrlimit(resource: c_int, rlim: *mut Rlimit) -> c_int;
        pub fn setrlimit(resource: c_int, rlim: *const Rlimit) -> c_int;
    }
}

/// Converts a `-1`-on-error libc return value into an [`io::Result`].
fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Which readiness classes a registered fd should report.
///
/// Peer hangup (`EPOLLRDHUP`) is always monitored so idle connections whose
/// peer disappears surface as events even while reads are paused for
/// backpressure.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer half-closed).
    pub readable: bool,
    /// Wake when the fd accepts more outbound bytes.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest: the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write-only interest: reads paused under backpressure, flush pending.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions: flush pending while still accepting requests.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn mask(self) -> u32 {
        let mut mask = sys::EPOLLRDHUP;
        if self.readable {
            mask |= sys::EPOLLIN;
        }
        if self.writable {
            mask |= sys::EPOLLOUT;
        }
        mask
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// The fd has bytes to read (or a pending accept).
    pub readable: bool,
    /// The fd can take more outbound bytes.
    pub writable: bool,
    /// The fd is in an error state (`EPOLLERR`).
    pub error: bool,
    /// The peer hung up or half-closed (`EPOLLHUP` / `EPOLLRDHUP`).
    pub hangup: bool,
}

/// Reusable buffer of kernel-reported events for [`Poller::wait`].
pub struct Events {
    buf: Vec<sys::EpollEvent>,
    len: usize,
}

impl Events {
    /// Allocates space for up to `capacity` events per wait call.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; capacity.max(1)],
            len: 0,
        }
    }

    /// Iterates over the events reported by the most recent wait.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|raw| {
            // Copy out of the packed struct before touching fields.
            let raw = *raw;
            let mask = raw.events;
            Event {
                token: raw.data,
                readable: mask & sys::EPOLLIN != 0,
                writable: mask & sys::EPOLLOUT != 0,
                error: mask & sys::EPOLLERR != 0,
                hangup: mask & (sys::EPOLLHUP | sys::EPOLLRDHUP) != 0,
            }
        })
    }
}

/// Level-triggered epoll instance.
///
/// Level-triggered mode keeps the state machine simple: a short read or a
/// deferred flush re-reports on the next wait instead of being lost, so the
/// loop never needs drain-until-`EAGAIN` discipline for correctness.
pub struct Poller {
    epfd: OwnedFd,
}

impl Poller {
    /// Creates a new epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 takes no pointers; cvt screens the result.
        let fd = cvt(unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) })?;
        Ok(Poller {
            // SAFETY: cvt guarantees `fd` is a live descriptor we just
            // created and exclusively own; OwnedFd takes over closing it.
            epfd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: i32, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        let mut event = sys::EpollEvent {
            events: interest.mask(),
            data: token,
        };
        // SAFETY: `event` is a live, properly initialized EpollEvent for
        // the duration of the call; the epfd is owned and open.
        cvt(unsafe { sys::epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut event) })?;
        Ok(())
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Changes the interest set of an already registered fd.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Removes `fd` from the poller. Safe to call on already-closed fds;
    /// the caller decides whether the error matters.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        let mut event = sys::EpollEvent { events: 0, data: 0 };
        // SAFETY: same contract as ctl(); pre-2.6.9 kernels require a
        // non-null event pointer for DEL, which `event` provides.
        cvt(unsafe { sys::epoll_ctl(self.epfd.as_raw_fd(), sys::EPOLL_CTL_DEL, fd, &mut event) })?;
        Ok(())
    }

    /// Blocks until at least one registered fd is ready, `timeout` elapses
    /// (`None` = wait forever), or a signal interrupts the wait (reported as
    /// zero events, not an error). Returns the number of events filled into
    /// `events`.
    pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms = match timeout {
            // Round up so a 100µs deadline does not become a busy-loop of
            // zero-timeout polls.
            Some(t) => {
                let mut ms = t.as_millis();
                if t.subsec_nanos() % 1_000_000 != 0 {
                    ms += 1;
                }
                ms.min(i32::MAX as u128) as i32
            }
            None => -1,
        };
        // SAFETY: the pointer/len pair describes `events.buf`, which
        // outlives the call; the kernel writes at most `len` entries.
        let n = unsafe {
            sys::epoll_wait(
                self.epfd.as_raw_fd(),
                events.buf.as_mut_ptr(),
                events.buf.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                events.len = 0;
                return Ok(0);
            }
            return Err(err);
        }
        events.len = n as usize;
        Ok(events.len)
    }
}

/// Cross-thread wakeup for a sleeping [`Poller`], backed by a nonblocking
/// `eventfd`.
///
/// Register [`Waker::as_raw_fd`] with the poller under a reserved token; any
/// thread may then call [`Waker::wake`]. The owning loop calls
/// [`Waker::drain`] when the token reports readable so the level-triggered
/// poller stops re-reporting it.
pub struct Waker {
    fd: OwnedFd,
}

impl Waker {
    /// Creates a new waker.
    pub fn new() -> io::Result<Waker> {
        // SAFETY: eventfd takes no pointers; cvt screens the result.
        let fd = cvt(unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) })?;
        Ok(Waker {
            // SAFETY: cvt guarantees a live descriptor we exclusively
            // own; OwnedFd takes over closing it.
            fd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    /// The fd to register with a [`Poller`].
    pub fn as_raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Signals the owning loop. Never blocks: if the eventfd counter is
    /// already saturated a wakeup is pending anyway, so `EAGAIN` is ignored.
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writes exactly 8 bytes from `one`, which lives on this
        // stack frame for the whole call.
        unsafe {
            sys::write(
                self.fd.as_raw_fd(),
                (&one as *const u64).cast(),
                std::mem::size_of::<u64>(),
            );
        }
    }

    /// Clears pending wakeups so the poller stops reporting the fd readable.
    pub fn drain(&self) {
        let mut count: u64 = 0;
        // SAFETY: reads exactly 8 bytes into `count`, which lives on this
        // stack frame for the whole call.
        unsafe {
            sys::read(
                self.fd.as_raw_fd(),
                (&mut count as *mut u64).cast(),
                std::mem::size_of::<u64>(),
            );
        }
    }
}

/// Raises `RLIMIT_NOFILE` as far as the kernel allows, returning the
/// effective soft limit.
///
/// Tries to lift both limits to `target` first (possible when running with
/// `CAP_SYS_RESOURCE`, e.g. as root in the bench container, up to
/// `fs.nr_open`); if that is denied, falls back to raising the soft limit to
/// the existing hard limit. Never lowers either limit.
pub fn raise_nofile_limit(target: u64) -> io::Result<u64> {
    let mut lim = sys::Rlimit { cur: 0, max: 0 };
    // SAFETY: `lim` is a valid Rlimit the kernel fills in.
    cvt(unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut lim) })?;

    if lim.max < target {
        let want = sys::Rlimit {
            cur: target,
            max: target,
        };
        // SAFETY: `want` is a valid Rlimit for the duration of the call.
        if unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &want) } == 0 {
            return Ok(target);
        }
        // Unprivileged (or above fs.nr_open): keep the current hard limit.
    }
    if lim.cur < lim.max {
        let want = sys::Rlimit {
            cur: lim.max,
            max: lim.max,
        };
        // SAFETY: `want` is a valid Rlimit for the duration of the call.
        cvt(unsafe { sys::setrlimit(sys::RLIMIT_NOFILE, &want) })?;
    }
    let mut after = sys::Rlimit { cur: 0, max: 0 };
    // SAFETY: `after` is a valid Rlimit the kernel fills in.
    cvt(unsafe { sys::getrlimit(sys::RLIMIT_NOFILE, &mut after) })?;
    Ok(after.cur)
}

/// Re-issues `listen(2)` on a bound listener with a larger backlog.
///
/// `TcpListener::bind` hardcodes a backlog of 128; a 10k connection storm
/// overflows that queue and stalls on SYN retransmits. Calling `listen`
/// again on the same socket just updates the backlog.
pub fn boost_listen_backlog(listener: &TcpListener, backlog: u32) -> io::Result<()> {
    // SAFETY: listen takes no pointers; the fd is kept alive by the
    // borrowed listener.
    cvt(unsafe { sys::listen(listener.as_raw_fd(), backlog.min(i32::MAX as u32) as i32) })?;
    Ok(())
}

/// Shrinks (or grows) a stream's kernel send/receive buffers.
///
/// Used by tests to force partial writes: with a tiny `SO_SNDBUF`, a frame
/// larger than the buffer cannot be written in one syscall, exercising the
/// short-write paths on both client and server. The kernel clamps and
/// doubles the requested values; this only needs "small", not exact.
pub fn set_socket_buffers(stream: &TcpStream, send_bytes: u32, recv_bytes: u32) -> io::Result<()> {
    for (opt, value) in [(sys::SO_SNDBUF, send_bytes), (sys::SO_RCVBUF, recv_bytes)] {
        let value = value as i32;
        // SAFETY: passes 4 bytes of the stack-local `value`; the fd is
        // kept alive by the borrowed stream.
        cvt(unsafe {
            sys::setsockopt(
                stream.as_raw_fd(),
                sys::SOL_SOCKET,
                opt,
                (&value as *const i32).cast(),
                std::mem::size_of::<i32>() as u32,
            )
        })?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::sync::Arc;
    use std::time::Instant;

    const WAKER_TOKEN: u64 = u64::MAX;

    #[test]
    fn waker_pulls_a_sleeping_poller_out_of_wait() {
        let poller = Poller::new().unwrap();
        let waker = Arc::new(Waker::new().unwrap());
        poller
            .add(waker.as_raw_fd(), WAKER_TOKEN, Interest::READ)
            .unwrap();

        let remote = Arc::clone(&waker);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            remote.wake();
        });

        let mut events = Events::with_capacity(8);
        let start = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1, "exactly the waker fires");
        let event = events.iter().next().unwrap();
        assert_eq!(event.token, WAKER_TOKEN);
        assert!(event.readable);
        assert!(
            start.elapsed() < Duration::from_secs(4),
            "woken well before the timeout"
        );

        waker.drain();
        let n = poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
        assert_eq!(n, 0, "drained waker stops reporting readable");
        handle.join().unwrap();
    }

    #[test]
    fn listener_and_stream_readiness_flow_through_epoll() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();

        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 1, Interest::READ).unwrap();

        let mut events = Events::with_capacity(8);
        assert_eq!(
            poller.wait(&mut events, Some(Duration::ZERO)).unwrap(),
            0,
            "no pending accept yet"
        );

        let mut client = TcpStream::connect(addr).unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events.iter().next().unwrap().readable, "accept is pending");

        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        poller
            .add(server_side.as_raw_fd(), 2, Interest::READ_WRITE)
            .unwrap();

        client.write_all(b"ping").unwrap();
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut saw_read = false;
        let mut saw_write = false;
        while Instant::now() < deadline && !(saw_read && saw_write) {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            for event in events.iter() {
                if event.token == 2 {
                    saw_read |= event.readable;
                    saw_write |= event.writable;
                }
            }
        }
        assert!(saw_read, "bytes in flight report readable");
        assert!(saw_write, "idle socket reports writable");

        // Peer hangup surfaces even with read-only interest.
        poller
            .modify(server_side.as_raw_fd(), 2, Interest::READ)
            .unwrap();
        drop(client);
        let deadline = Instant::now() + Duration::from_secs(5);
        let mut saw_close = false;
        while Instant::now() < deadline && !saw_close {
            poller
                .wait(&mut events, Some(Duration::from_millis(100)))
                .unwrap();
            for event in events.iter() {
                if event.token == 2 && (event.hangup || event.readable) {
                    saw_close = true;
                }
            }
        }
        assert!(saw_close, "hangup reported");
        let mut buf = [0u8; 16];
        let mut tmp = server_side;
        let got = tmp.read(&mut buf).unwrap();
        assert_eq!(&buf[..got], b"ping");

        poller.delete(tmp.as_raw_fd()).unwrap();
    }

    #[test]
    fn nofile_limit_is_raised_and_never_lowered() {
        let first = raise_nofile_limit(1 << 16).unwrap();
        assert!(first >= 1024, "effective limit is sane: {first}");
        // Idempotent: a second call must not shrink what the first achieved.
        let second = raise_nofile_limit(1 << 16).unwrap();
        assert!(
            second >= first,
            "second call never lowers ({second} < {first})"
        );
    }

    #[test]
    fn socket_knobs_apply_cleanly() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        boost_listen_backlog(&listener, 4096).unwrap();
        let stream = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        set_socket_buffers(&stream, 4096, 4096).unwrap();
    }
}
