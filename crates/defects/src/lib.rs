//! Controlled defect injection for the DeepMorph reproduction.
//!
//! Section IV of the paper injects three defect types into healthy
//! model/dataset pairs:
//!
//! * **ITD** (Insufficient Training Data) — "randomly remove a part of data
//!   of some specific classes" → [`DefectSpec::insufficient_training_data`].
//! * **UTD** (Unreliable Training Data) — "tag a part of the training data
//!   of one class to the other" → [`DefectSpec::unreliable_training_data`].
//! * **SD** (Structure Defect) — "manually removing … Convolution layer\[s\]
//!   from the original network structures" →
//!   [`DefectSpec::structure_defect`], which flows into
//!   [`deepmorph_models::ModelSpec::removed_convs`].
//!
//! A [`DefectSpec`] is applied in two places: to the training
//! [`Dataset`](deepmorph_data::Dataset) (ITD/UTD) and to the
//! [`ModelSpec`](deepmorph_models::ModelSpec) (SD); healthy specs leave
//! both untouched.

mod error;
mod inject;
mod kind;

pub use error::DefectError;
pub use inject::DefectSpec;
pub use kind::DefectKind;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::error::DefectError;
    pub use crate::inject::DefectSpec;
    pub use crate::kind::DefectKind;
}
