//! The defect taxonomy.

/// The three root-cause defect types DeepMorph distinguishes (paper
/// Section III).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DefectKind {
    /// Insufficient Training Data: the training distribution is missing
    /// regions that occur in production.
    InsufficientTrainingData,
    /// Unreliable Training Data: the training set contains falsely labeled
    /// cases.
    UnreliableTrainingData,
    /// Structure Defect: the network structure is too weak to learn the
    /// task's features.
    StructureDefect,
}

impl DefectKind {
    /// The paper's abbreviation (ITD / UTD / SD).
    pub fn abbrev(self) -> &'static str {
        match self {
            DefectKind::InsufficientTrainingData => "ITD",
            DefectKind::UnreliableTrainingData => "UTD",
            DefectKind::StructureDefect => "SD",
        }
    }

    /// Long human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            DefectKind::InsufficientTrainingData => "Insufficient Training Data",
            DefectKind::UnreliableTrainingData => "Unreliable Training Data",
            DefectKind::StructureDefect => "Structure Defect",
        }
    }

    /// All kinds in the paper's row order (ITD, UTD, SD).
    pub fn all() -> [DefectKind; 3] {
        [
            DefectKind::InsufficientTrainingData,
            DefectKind::UnreliableTrainingData,
            DefectKind::StructureDefect,
        ]
    }

    /// Index of this kind within [`DefectKind::all`].
    pub fn index(self) -> usize {
        match self {
            DefectKind::InsufficientTrainingData => 0,
            DefectKind::UnreliableTrainingData => 1,
            DefectKind::StructureDefect => 2,
        }
    }
}

impl std::fmt::Display for DefectKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_matches_paper_rows() {
        let all = DefectKind::all();
        assert_eq!(all[0].abbrev(), "ITD");
        assert_eq!(all[1].abbrev(), "UTD");
        assert_eq!(all[2].abbrev(), "SD");
        for (i, k) in all.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }

    #[test]
    fn display_uses_abbrev() {
        assert_eq!(DefectKind::StructureDefect.to_string(), "SD");
    }
}
