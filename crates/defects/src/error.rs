//! Typed errors for defect injection.

use std::fmt;

/// Errors produced when applying a [`crate::DefectSpec`] to a dataset.
///
/// Injection used to `panic!` on an out-of-range class; a long-running
/// process (the serving layer diagnoses live traffic against operator
/// supplied specs) must instead receive a typed error it can report.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DefectError {
    /// A defect spec referenced a class the dataset does not have.
    ClassOutOfRange {
        /// Which part of the spec referenced the class.
        role: &'static str,
        /// The offending class index.
        class: usize,
        /// Number of classes the dataset actually has.
        num_classes: usize,
    },
}

impl fmt::Display for DefectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DefectError::ClassOutOfRange {
                role,
                class,
                num_classes,
            } => write!(
                f,
                "{role} class {class} out of range for a dataset with {num_classes} classes"
            ),
        }
    }
}

impl std::error::Error for DefectError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_role() {
        let e = DefectError::ClassOutOfRange {
            role: "ITD",
            class: 9,
            num_classes: 4,
        };
        assert!(e.to_string().contains("ITD class 9"));
        assert!(e.to_string().contains("4 classes"));
    }
}
