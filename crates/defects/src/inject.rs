//! Defect injectors.

use deepmorph_data::Dataset;
use deepmorph_models::ModelSpec;
use rand::seq::SliceRandom;
use rand_chacha::ChaCha8Rng;

use crate::error::DefectError;
use crate::kind::DefectKind;

/// A concrete, parameterized defect to inject into a scenario.
///
/// Construct with the named constructors; apply with
/// [`DefectSpec::apply_to_dataset`] (ITD/UTD) and
/// [`DefectSpec::apply_to_model_spec`] (SD). `Healthy` is the identity on
/// both.
#[derive(Debug, Clone, PartialEq)]
pub enum DefectSpec {
    /// No defect (control condition).
    Healthy,
    /// Remove `fraction` of the training data of each class in `classes`.
    Itd {
        /// Classes whose training data is starved.
        classes: Vec<usize>,
        /// Fraction of each starved class removed, in `[0, 1]`.
        fraction: f32,
    },
    /// Relabel `fraction` of `source_class`'s training samples as
    /// `target_class`.
    Utd {
        /// Class whose samples get corrupted labels.
        source_class: usize,
        /// The wrong label they receive.
        target_class: usize,
        /// Fraction of the source class corrupted, in `[0, 1]`.
        fraction: f32,
    },
    /// Remove `removed_convs` convolution units from the model.
    Sd {
        /// Number of conv units removed (see each family's builder docs).
        removed_convs: usize,
    },
}

impl DefectSpec {
    /// ITD: starve the given classes by removing `fraction` of their
    /// training samples.
    pub fn insufficient_training_data(classes: impl Into<Vec<usize>>, fraction: f32) -> Self {
        DefectSpec::Itd {
            classes: classes.into(),
            fraction: fraction.clamp(0.0, 1.0),
        }
    }

    /// UTD: mislabel `fraction` of `source_class` as `target_class`.
    pub fn unreliable_training_data(
        source_class: usize,
        target_class: usize,
        fraction: f32,
    ) -> Self {
        DefectSpec::Utd {
            source_class,
            target_class,
            fraction: fraction.clamp(0.0, 1.0),
        }
    }

    /// SD: weaken the network by removing `removed_convs` conv units.
    pub fn structure_defect(removed_convs: usize) -> Self {
        DefectSpec::Sd { removed_convs }
    }

    /// The injected defect kind (`None` for `Healthy`).
    pub fn kind(&self) -> Option<DefectKind> {
        match self {
            DefectSpec::Healthy => None,
            DefectSpec::Itd { .. } => Some(DefectKind::InsufficientTrainingData),
            DefectSpec::Utd { .. } => Some(DefectKind::UnreliableTrainingData),
            DefectSpec::Sd { .. } => Some(DefectKind::StructureDefect),
        }
    }

    /// Applies the data-side injection, returning the (possibly) modified
    /// training set. SD and Healthy return the dataset unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`DefectError::ClassOutOfRange`] if the spec references a
    /// class the dataset does not have; the dataset is left untouched.
    pub fn apply_to_dataset(
        &self,
        train: &Dataset,
        rng: &mut ChaCha8Rng,
    ) -> Result<Dataset, DefectError> {
        let check = |role: &'static str, class: usize| {
            if class < train.num_classes() {
                Ok(())
            } else {
                Err(DefectError::ClassOutOfRange {
                    role,
                    class,
                    num_classes: train.num_classes(),
                })
            }
        };
        match self {
            DefectSpec::Healthy | DefectSpec::Sd { .. } => Ok(train.clone()),
            DefectSpec::Itd { classes, fraction } => {
                // Validate every class before drawing from the RNG so a
                // rejected spec cannot perturb the injection stream.
                for &class in classes {
                    check("ITD", class)?;
                }
                let mut remove = Vec::new();
                for &class in classes {
                    let mut idx = train.class_indices(class);
                    idx.shuffle(rng);
                    let take = ((idx.len() as f32) * fraction).round() as usize;
                    remove.extend_from_slice(&idx[..take.min(idx.len())]);
                }
                Ok(train.without_indices(&remove))
            }
            DefectSpec::Utd {
                source_class,
                target_class,
                fraction,
            } => {
                check("UTD source", *source_class)?;
                check("UTD target", *target_class)?;
                let mut corrupted = train.clone();
                let mut idx = train.class_indices(*source_class);
                idx.shuffle(rng);
                let take = ((idx.len() as f32) * fraction).round() as usize;
                for &i in idx.iter().take(take) {
                    corrupted.set_label(i, *target_class);
                }
                Ok(corrupted)
            }
        }
    }

    /// Applies the model-side injection (SD), returning the modified spec.
    pub fn apply_to_model_spec(&self, spec: ModelSpec) -> ModelSpec {
        match self {
            DefectSpec::Sd { removed_convs } => spec.with_removed_convs(*removed_convs),
            _ => spec,
        }
    }

    /// A short config string for reports, e.g. `ITD(classes=[0,1,2], f=0.9)`.
    pub fn describe(&self) -> String {
        match self {
            DefectSpec::Healthy => "Healthy".to_string(),
            DefectSpec::Itd { classes, fraction } => {
                format!("ITD(classes={classes:?}, f={fraction})")
            }
            DefectSpec::Utd {
                source_class,
                target_class,
                fraction,
            } => format!("UTD({source_class}->{target_class}, f={fraction})"),
            DefectSpec::Sd { removed_convs } => format!("SD(removed={removed_convs})"),
        }
    }
}

impl std::fmt::Display for DefectSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmorph_models::{ModelFamily, ModelScale};
    use deepmorph_tensor::init::stream_rng;
    use deepmorph_tensor::Tensor;

    fn toy_dataset(per_class: usize, classes: usize) -> Dataset {
        let n = per_class * classes;
        let images = Tensor::zeros(&[n, 1, 2, 2]);
        let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
        Dataset::new(images, labels, classes).unwrap()
    }

    #[test]
    fn itd_starves_selected_classes() {
        let ds = toy_dataset(20, 4);
        let spec = DefectSpec::insufficient_training_data(vec![1, 2], 0.75);
        let mut rng = stream_rng(1, "defect");
        let injected = spec.apply_to_dataset(&ds, &mut rng).unwrap();
        let hist = injected.class_histogram();
        assert_eq!(hist[0], 20);
        assert_eq!(hist[1], 5);
        assert_eq!(hist[2], 5);
        assert_eq!(hist[3], 20);
    }

    #[test]
    fn utd_relabels_fraction() {
        let ds = toy_dataset(20, 3);
        let spec = DefectSpec::unreliable_training_data(0, 2, 0.5);
        let mut rng = stream_rng(2, "defect");
        let injected = spec.apply_to_dataset(&ds, &mut rng).unwrap();
        let hist = injected.class_histogram();
        assert_eq!(hist[0], 10);
        assert_eq!(hist[1], 20);
        assert_eq!(hist[2], 30);
        assert_eq!(injected.len(), ds.len()); // no samples removed
    }

    #[test]
    fn sd_modifies_model_spec_only() {
        let ds = toy_dataset(5, 2);
        let spec = DefectSpec::structure_defect(2);
        let mut rng = stream_rng(3, "defect");
        let injected = spec.apply_to_dataset(&ds, &mut rng).unwrap();
        assert_eq!(injected, ds);
        let mspec = ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [1, 16, 16], 10);
        assert_eq!(spec.apply_to_model_spec(mspec).removed_convs, 2);
        assert_eq!(
            DefectSpec::Healthy.apply_to_model_spec(mspec).removed_convs,
            0
        );
    }

    #[test]
    fn injection_is_deterministic() {
        let ds = toy_dataset(30, 3);
        let spec = DefectSpec::insufficient_training_data(vec![0], 0.5);
        let a = spec
            .apply_to_dataset(&ds, &mut stream_rng(7, "defect"))
            .unwrap();
        let b = spec
            .apply_to_dataset(&ds, &mut stream_rng(7, "defect"))
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn out_of_range_classes_are_typed_errors() {
        let ds = toy_dataset(5, 3);
        let mut rng = stream_rng(9, "defect");
        let err = DefectSpec::insufficient_training_data(vec![0, 7], 0.5)
            .apply_to_dataset(&ds, &mut rng)
            .unwrap_err();
        assert_eq!(
            err,
            DefectError::ClassOutOfRange {
                role: "ITD",
                class: 7,
                num_classes: 3,
            }
        );
        let err = DefectSpec::unreliable_training_data(1, 3, 0.5)
            .apply_to_dataset(&ds, &mut rng)
            .unwrap_err();
        assert!(matches!(
            err,
            DefectError::ClassOutOfRange {
                role: "UTD target",
                ..
            }
        ));
    }

    #[test]
    fn kind_mapping() {
        assert_eq!(DefectSpec::Healthy.kind(), None);
        assert_eq!(
            DefectSpec::structure_defect(1).kind(),
            Some(DefectKind::StructureDefect)
        );
    }

    #[test]
    fn fractions_are_clamped() {
        // A single pattern assertion: no panicking fallback arm needed.
        let spec = DefectSpec::insufficient_training_data(vec![0], 7.0);
        assert!(matches!(spec, DefectSpec::Itd { fraction, .. } if fraction == 1.0));
    }

    #[test]
    fn describe_is_informative() {
        let s = DefectSpec::unreliable_training_data(3, 5, 0.4).describe();
        assert!(s.contains("3->5"));
        assert!(s.contains("0.4"));
    }
}
