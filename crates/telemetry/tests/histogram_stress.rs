//! Contended-recording stress test for [`LogHistogram`].
//!
//! N recorder threads hammer one histogram while a snapshotter thread
//! takes quantile snapshots the whole time. The invariants asserted are
//! exactly the ones concurrent relaxed recording guarantees:
//!
//! * a snapshot's total never exceeds the number of records started;
//! * totals and every individual bucket are monotonic across successive
//!   snapshots (read-read coherence on each bucket atomic — a regression
//!   would mean a lost or double-counted sample);
//! * quantiles drawn mid-flight never exceed the largest recordable
//!   value's bucket bound;
//! * after all recorders join, the final snapshot is exact.

use deepmorph_telemetry::{bucket_bounds, bucket_index, LogHistogram};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const RECORDERS: usize = 4;
const PER_THREAD: u64 = 50_000;
/// Values cycle in `[0, VALUE_RANGE)` so the expected quantile/max
/// bounds are known exactly.
const VALUE_RANGE: u64 = 5_000;

#[test]
fn contended_recording_keeps_snapshots_consistent() {
    let hist = Arc::new(LogHistogram::new());
    let done = Arc::new(AtomicBool::new(false));
    let total = RECORDERS as u64 * PER_THREAD;
    let max_bound = bucket_bounds(bucket_index(VALUE_RANGE - 1)).1;

    let snapshotter = {
        let hist = Arc::clone(&hist);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut prev = hist.snapshot();
            let mut iterations = 0u64;
            while !done.load(Ordering::Acquire) || iterations == 0 {
                let snap = hist.snapshot();
                let count = snap.count();
                assert!(
                    count <= total,
                    "snapshot total {count} exceeds records started {total}"
                );
                assert!(
                    count >= prev.count(),
                    "snapshot total regressed: {} -> {count}",
                    prev.count()
                );
                for (i, (&now, &before)) in snap.buckets.iter().zip(&prev.buckets).enumerate() {
                    assert!(
                        now >= before,
                        "bucket {i} regressed between snapshots: {before} -> {now}"
                    );
                }
                if count > 0 {
                    for q in [0.5, 0.99, 1.0] {
                        let v = snap.quantile(q);
                        assert!(
                            v <= max_bound,
                            "quantile({q}) = {v} above max recordable bound {max_bound}"
                        );
                    }
                    assert!(snap.max() <= max_bound);
                }
                prev = snap;
                iterations += 1;
            }
            iterations
        })
    };

    let recorders: Vec<_> = (0..RECORDERS)
        .map(|t| {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    hist.record((t as u64 * 7 + i * 13) % VALUE_RANGE);
                }
            })
        })
        .collect();

    for r in recorders {
        r.join().expect("recorder panicked");
    }
    done.store(true, Ordering::Release);
    let iterations = snapshotter.join().expect("snapshotter panicked");
    assert!(iterations > 0);

    // The joins synchronize with every recorder's last write: the final
    // snapshot must be exact, not approximate.
    let final_snap = hist.snapshot();
    assert_eq!(final_snap.count(), total);
    assert_eq!(final_snap.max(), max_bound);
    assert_eq!(final_snap.quantile(1.0), max_bound);

    // Every recorded value landed in its own bucket: recompute the
    // expected bucket tallies serially and compare exactly.
    let mut expected = vec![0u64; final_snap.buckets.len()];
    for t in 0..RECORDERS as u64 {
        for i in 0..PER_THREAD {
            expected[bucket_index((t * 7 + i * 13) % VALUE_RANGE)] += 1;
        }
    }
    assert_eq!(final_snap.buckets, expected);
}
