//! **deepmorph-telemetry** — allocation-free serving observability.
//!
//! The serving stack's only runtime window used to be a flat snapshot of
//! lifetime counters; this crate adds the distributions: fixed-bucket
//! log₂-scale latency histograms, per-request stage spans, a bounded
//! ring of the slowest request traces, and per-model-version live-traffic
//! stats (including the labeled-case misclassification rate the
//! autonomous-repair controller needs to watch for drift).
//!
//! The design contract mirrors `deepmorph-faults` exactly:
//!
//! * **Unarmed is free.** Nothing records unless a process-global
//!   [`Telemetry`] registry has been [`install`]ed; every hook costs one
//!   relaxed atomic load when it hasn't ([`armed`]). Production builds
//!   that never install telemetry are bitwise-identical to builds without
//!   this crate in the loop.
//! * **Armed is allocation-free on the hot path.** Recording a histogram
//!   sample is exactly one relaxed `fetch_add` on a preallocated bucket;
//!   per-version counters are relaxed adds on a cached handle; the
//!   slow-trace ring replaces entries in place. Only *discovering* a new
//!   model version allocates (once per version, off the per-row path).
//! * **Telemetry observes, never steers.** Nothing in this crate touches
//!   request or tensor data, so responses stay bitwise-identical with
//!   telemetry armed or off — pinned by a digest test in the serve crate.
//!
//! # Histogram shape
//!
//! [`LogHistogram`] is an HdrHistogram-style log₂ layout: values below
//! [`SUB_BUCKETS`] get exact unit buckets, and every power-of-two octave
//! above that splits into [`SUB_BUCKETS`] linear sub-buckets, bounding the
//! relative quantization error at `1/SUB_BUCKETS` (~3%). The bucket array
//! is fixed at [`NUM_BUCKETS`] slots; values past the top bucket saturate
//! into it. p50/p95/p99/max are all derived from the buckets after the
//! fact — recording never sorts, allocates, or takes a lock.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};
use std::time::Instant;

/// Linear sub-buckets per log₂ octave (values below this are exact).
pub const SUB_BUCKETS: u64 = 32;
const SUB_BITS: u32 = 5; // log2(SUB_BUCKETS)

/// Total bucket count of a [`LogHistogram`]. Values of `2^36` and above
/// (≈ 19 hours when recording microseconds) saturate into the top bucket.
pub const NUM_BUCKETS: usize = 1024;

/// Bucket index of `value` (saturating at the top bucket).
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        return value as usize;
    }
    let octave = 63 - value.leading_zeros(); // >= SUB_BITS
    let sub = (value >> (octave - SUB_BITS)) - SUB_BUCKETS;
    let index = ((octave - SUB_BITS + 1) as u64 * SUB_BUCKETS + sub) as usize;
    index.min(NUM_BUCKETS - 1)
}

/// Inclusive `[low, high]` value range of bucket `index`. The saturated
/// top bucket reports `u64::MAX` as its high bound.
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < SUB_BUCKETS as usize {
        return (index as u64, index as u64);
    }
    let octave = (index as u32 >> SUB_BITS) - 1 + SUB_BITS;
    let sub = index as u64 & (SUB_BUCKETS - 1);
    let width = 1u64 << (octave - SUB_BITS);
    let low = (SUB_BUCKETS + sub) << (octave - SUB_BITS);
    if index == NUM_BUCKETS - 1 {
        (low, u64::MAX)
    } else {
        (low, low + width - 1)
    }
}

/// A fixed-bucket log₂-scale histogram safe for concurrent recording.
///
/// Recording is one relaxed `fetch_add` on a preallocated bucket: no
/// locks, no allocation, no ordering constraints. Everything else —
/// count, max, quantiles — is derived from a [`HistogramSnapshot`].
#[derive(Debug)]
pub struct LogHistogram {
    buckets: Box<[AtomicU64]>,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram (allocates its bucket array once, up front).
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Records one sample: a single relaxed atomic add.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the buckets (relaxed loads; counts
    /// recorded concurrently with the snapshot may or may not appear).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// An immutable copy of a [`LogHistogram`]'s buckets, with the derived
/// statistics (count, quantiles, max) computed on demand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts ([`NUM_BUCKETS`] entries).
    pub buckets: Vec<u64>,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The quantile estimate: the upper bound of the bucket holding the
    /// rank-`ceil(q·count)` sample — within one bucket (≤ ~3% relative)
    /// of the sorted-sample truth. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(index).1;
            }
        }
        bucket_bounds(NUM_BUCKETS - 1).1
    }

    /// Upper bound of the highest nonempty bucket (0 when empty).
    pub fn max(&self) -> u64 {
        self.buckets
            .iter()
            .rposition(|&n| n > 0)
            .map_or(0, |index| bucket_bounds(index).1)
    }

    /// Adds another snapshot's buckets into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (into, &from) in self.buckets.iter_mut().zip(&other.buckets) {
            *into += from;
        }
    }
}

/// A relaxed monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` (relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value (relaxed).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A relaxed last-write-wins gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge (relaxed).
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value (relaxed).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The per-request pipeline stages the serving stack instruments, in
/// request order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Accepting + registering one connection (connection-scoped).
    Accept,
    /// First byte of a frame to its complete assembly.
    Assembly,
    /// Job submission to the scheduler until a worker picks it up.
    QueueWait,
    /// Batch coalescing: queue drain plus the optional straggler wait.
    Coalesce,
    /// The batched forward (replica refresh included).
    Compute,
    /// Outbound delivery: response enqueue + wake on the stage
    /// histogram's request side; socket flush passes on the loop side.
    Flush,
}

/// Number of [`Stage`] variants.
pub const STAGE_COUNT: usize = 6;

impl Stage {
    /// Every stage, in request order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Accept,
        Stage::Assembly,
        Stage::QueueWait,
        Stage::Coalesce,
        Stage::Compute,
        Stage::Flush,
    ];

    /// Index into per-stage arrays.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable label (used in the Prometheus exposition).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Accept => "accept",
            Stage::Assembly => "assembly",
            Stage::QueueWait => "queue_wait",
            Stage::Coalesce => "coalesce",
            Stage::Compute => "compute",
            Stage::Flush => "flush",
        }
    }
}

/// One request's per-stage timing, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Trace {
    /// The request id the client sent (echoed in the response frame).
    pub id: u64,
    /// End-to-end server-side latency in microseconds.
    pub total_us: u64,
    /// Per-stage microseconds, indexed by [`Stage::index`]. Stages a
    /// request never crossed stay 0.
    pub stages: [u64; STAGE_COUNT],
}

/// Bounded keep-the-slowest ring of request traces.
///
/// `offer` replaces the fastest retained trace in place once the ring is
/// full, so steady-state offering never allocates.
#[derive(Debug)]
struct SlowTraces {
    cap: usize,
    slots: Mutex<Vec<Trace>>,
}

impl SlowTraces {
    fn new(cap: usize) -> SlowTraces {
        SlowTraces {
            cap: cap.max(1),
            slots: Mutex::new(Vec::with_capacity(cap.max(1))),
        }
    }

    fn offer(&self, trace: Trace) {
        let mut slots = self.slots.lock().unwrap_or_else(PoisonError::into_inner);
        if slots.len() < self.cap {
            slots.push(trace);
            return;
        }
        let (slot, fastest) = slots
            .iter_mut()
            .enumerate()
            .min_by_key(|(_, t)| t.total_us)
            .map(|(i, t)| (i, t.total_us))
            .expect("cap >= 1");
        if trace.total_us > fastest {
            slots[slot] = trace;
        }
    }

    fn snapshot(&self) -> Vec<Trace> {
        let mut slots = self
            .slots
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        slots.sort_by_key(|trace| std::cmp::Reverse(trace.total_us));
        slots
    }
}

/// Live-traffic counters of one model version, keyed by its content
/// fingerprint. Handles are cached by serving workers, so the per-batch
/// cost is relaxed adds.
#[derive(Debug)]
pub struct VersionStats {
    /// 128-bit content fingerprint (32 hex chars) of the version.
    pub fingerprint: String,
    /// Predict requests answered by this version.
    pub requests: Counter,
    /// Requests answered with an error by this version's worker path.
    pub errors: Counter,
    /// Requests shed as expired while this version was serving.
    pub expired: Counter,
    /// Labeled rows this version predicted.
    pub labeled: Counter,
    /// Labeled rows this version got wrong.
    pub misclassified: Counter,
}

impl VersionStats {
    fn new(fingerprint: &str) -> VersionStats {
        VersionStats {
            fingerprint: fingerprint.to_string(),
            requests: Counter::default(),
            errors: Counter::default(),
            expired: Counter::default(),
            labeled: Counter::default(),
            misclassified: Counter::default(),
        }
    }

    fn snapshot(&self) -> VersionTraffic {
        VersionTraffic {
            fingerprint: self.fingerprint.clone(),
            requests: self.requests.get(),
            errors: self.errors.get(),
            expired: self.expired.get(),
            labeled: self.labeled.get(),
            misclassified: self.misclassified.get(),
        }
    }
}

/// Point-in-time live-traffic stats of one model version.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionTraffic {
    /// Content fingerprint of the version.
    pub fingerprint: String,
    /// Predict requests answered.
    pub requests: u64,
    /// Requests answered with an error.
    pub errors: u64,
    /// Requests shed as expired.
    pub expired: u64,
    /// Labeled rows predicted.
    pub labeled: u64,
    /// Labeled rows predicted wrong.
    pub misclassified: u64,
}

impl VersionTraffic {
    /// Live misclassification rate over labeled traffic (0 when no
    /// labeled rows were seen) — the drift signal an autonomous repair
    /// controller watches per version.
    pub fn misclassification_rate(&self) -> f64 {
        if self.labeled == 0 {
            0.0
        } else {
            self.misclassified as f64 / self.labeled as f64
        }
    }
}

/// Per-kernel timing of one GEMM shape (env-gated; see [`kernel_timer`]).
#[derive(Debug)]
struct KernelStats {
    m: u64,
    k: u64,
    n: u64,
    nanos: LogHistogram,
}

/// Point-in-time timing of one GEMM shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelTiming {
    /// Output rows.
    pub m: u64,
    /// Contraction dimension.
    pub k: u64,
    /// Output columns.
    pub n: u64,
    /// Wall-time histogram in nanoseconds.
    pub nanos: HistogramSnapshot,
}

/// Construction knobs of a [`Telemetry`] registry.
#[derive(Debug, Clone, Copy)]
pub struct TelemetryConfig {
    /// Slowest request traces retained ([`TelemetrySnapshot::slowest`]).
    pub slow_traces: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig { slow_traces: 16 }
    }
}

/// The armed metrics registry: request/stage latency histograms, the
/// slow-trace ring, per-version traffic stats, and (env-gated) per-kernel
/// GEMM timings. Install one process-globally with [`install`].
#[derive(Debug)]
pub struct Telemetry {
    request_us: LogHistogram,
    stages: [LogHistogram; STAGE_COUNT],
    slow: SlowTraces,
    versions: RwLock<Vec<Arc<VersionStats>>>,
    kernels: RwLock<Vec<Arc<KernelStats>>>,
}

impl Telemetry {
    /// A fresh registry (does not arm it; see [`install`]).
    pub fn new(config: TelemetryConfig) -> Telemetry {
        Telemetry {
            request_us: LogHistogram::new(),
            stages: std::array::from_fn(|_| LogHistogram::new()),
            slow: SlowTraces::new(config.slow_traces),
            versions: RwLock::new(Vec::new()),
            kernels: RwLock::new(Vec::new()),
        }
    }

    /// Records one end-to-end server-side request latency (µs).
    #[inline]
    pub fn record_request(&self, micros: u64) {
        self.request_us.record(micros);
    }

    /// Records one span of `stage` (µs).
    #[inline]
    pub fn record_stage(&self, stage: Stage, micros: u64) {
        self.stages[stage.index()].record(micros);
    }

    /// Offers a completed request trace to the slowest-N ring.
    pub fn offer_trace(&self, trace: Trace) {
        self.slow.offer(trace);
    }

    /// The traffic-stats handle of the version with this content
    /// fingerprint, created on first sight. Callers cache the `Arc` (per
    /// replica) so steady-state recording is pure relaxed adds.
    pub fn version(&self, fingerprint: &str) -> Arc<VersionStats> {
        {
            let versions = self.versions.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(v) = versions.iter().find(|v| v.fingerprint == fingerprint) {
                return Arc::clone(v);
            }
        }
        let mut versions = self
            .versions
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(v) = versions.iter().find(|v| v.fingerprint == fingerprint) {
            return Arc::clone(v);
        }
        let v = Arc::new(VersionStats::new(fingerprint));
        versions.push(Arc::clone(&v));
        v
    }

    fn kernel(&self, m: u64, k: u64, n: u64) -> Arc<KernelStats> {
        {
            let kernels = self.kernels.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(s) = kernels.iter().find(|s| s.m == m && s.k == k && s.n == n) {
                return Arc::clone(s);
            }
        }
        let mut kernels = self.kernels.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(s) = kernels.iter().find(|s| s.m == m && s.k == k && s.n == n) {
            return Arc::clone(s);
        }
        let s = Arc::new(KernelStats {
            m,
            k,
            n,
            nanos: LogHistogram::new(),
        });
        kernels.push(Arc::clone(&s));
        s
    }

    /// A point-in-time copy of everything this registry has aggregated.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            request_us: self.request_us.snapshot(),
            stages: self.stages.iter().map(LogHistogram::snapshot).collect(),
            slowest: self.slow.snapshot(),
            versions: self
                .versions
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|v| v.snapshot())
                .collect(),
            kernels: self
                .kernels
                .read()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|s| KernelTiming {
                    m: s.m,
                    k: s.k,
                    n: s.n,
                    nanos: s.nanos.snapshot(),
                })
                .collect(),
        }
    }
}

/// Everything a [`Telemetry`] registry aggregated, frozen at one instant.
/// This is what travels in the serve protocol's `Telemetry` frame and
/// what [`TelemetrySnapshot::to_prometheus`] renders.
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// End-to-end server-side request latency, microseconds.
    pub request_us: HistogramSnapshot,
    /// Per-stage latency histograms, microseconds, indexed by
    /// [`Stage::index`] ([`STAGE_COUNT`] entries).
    pub stages: Vec<HistogramSnapshot>,
    /// The slowest retained request traces, slowest first.
    pub slowest: Vec<Trace>,
    /// Per-model-version live-traffic stats.
    pub versions: Vec<VersionTraffic>,
    /// Env-gated per-GEMM-shape timings (empty unless
    /// `DEEPMORPH_KERNEL_TIMING` was set while armed).
    pub kernels: Vec<KernelTiming>,
}

impl Default for TelemetrySnapshot {
    fn default() -> Self {
        TelemetrySnapshot {
            request_us: HistogramSnapshot::default(),
            stages: (0..STAGE_COUNT)
                .map(|_| HistogramSnapshot::default())
                .collect(),
            slowest: Vec::new(),
            versions: Vec::new(),
            kernels: Vec::new(),
        }
    }
}

impl TelemetrySnapshot {
    /// Renders the snapshot as Prometheus text exposition (one
    /// `name{labels} value` sample per line, `#`-prefixed comments).
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let quantiles = [("0.5", 0.50), ("0.95", 0.95), ("0.99", 0.99)];

        out.push_str("# TYPE deepmorph_request_latency_us summary\n");
        for (label, q) in quantiles {
            let _ = writeln!(
                out,
                "deepmorph_request_latency_us{{quantile=\"{label}\"}} {}",
                self.request_us.quantile(q)
            );
        }
        let _ = writeln!(
            out,
            "deepmorph_request_latency_us_count {}",
            self.request_us.count()
        );
        let _ = writeln!(
            out,
            "deepmorph_request_latency_us_max {}",
            self.request_us.max()
        );

        out.push_str("# TYPE deepmorph_stage_latency_us summary\n");
        for stage in Stage::ALL {
            let hist = &self.stages[stage.index()];
            for (label, q) in quantiles {
                let _ = writeln!(
                    out,
                    "deepmorph_stage_latency_us{{stage=\"{}\",quantile=\"{label}\"}} {}",
                    stage.name(),
                    hist.quantile(q)
                );
            }
            let _ = writeln!(
                out,
                "deepmorph_stage_latency_us_count{{stage=\"{}\"}} {}",
                stage.name(),
                hist.count()
            );
        }

        for v in &self.versions {
            let fp = &v.fingerprint;
            let _ = writeln!(
                out,
                "deepmorph_version_requests_total{{fingerprint=\"{fp}\"}} {}",
                v.requests
            );
            let _ = writeln!(
                out,
                "deepmorph_version_errors_total{{fingerprint=\"{fp}\"}} {}",
                v.errors
            );
            let _ = writeln!(
                out,
                "deepmorph_version_expired_total{{fingerprint=\"{fp}\"}} {}",
                v.expired
            );
            let _ = writeln!(
                out,
                "deepmorph_version_labeled_total{{fingerprint=\"{fp}\"}} {}",
                v.labeled
            );
            let _ = writeln!(
                out,
                "deepmorph_version_misclassified_total{{fingerprint=\"{fp}\"}} {}",
                v.misclassified
            );
            let _ = writeln!(
                out,
                "deepmorph_version_misclassification_rate{{fingerprint=\"{fp}\"}} {}",
                v.misclassification_rate()
            );
        }

        for kernel in &self.kernels {
            let _ = writeln!(
                out,
                "deepmorph_kernel_gemm_ns{{m=\"{}\",k=\"{}\",n=\"{}\",quantile=\"0.5\"}} {}",
                kernel.m,
                kernel.k,
                kernel.n,
                kernel.nanos.quantile(0.5)
            );
            let _ = writeln!(
                out,
                "deepmorph_kernel_gemm_ns_count{{m=\"{}\",k=\"{}\",n=\"{}\"}} {}",
                kernel.m,
                kernel.k,
                kernel.n,
                kernel.nanos.count()
            );
        }
        out
    }
}

// ---------------------------------------------------------------------
// Process-global arming (the deepmorph-faults pattern)
// ---------------------------------------------------------------------

static ACTIVE: AtomicBool = AtomicBool::new(false);
static ARMED: RwLock<Option<Arc<Telemetry>>> = RwLock::new(None);

/// Arms a fresh registry process-globally and returns a handle to it.
/// Replaces any previously installed registry.
pub fn install(config: TelemetryConfig) -> Arc<Telemetry> {
    let telemetry = Arc::new(Telemetry::new(config));
    *ARMED.write().unwrap_or_else(PoisonError::into_inner) = Some(Arc::clone(&telemetry));
    // ORDERING: Release orders the flag after the registry publish above.
    // The flag is only a hint: readers that see it re-check under
    // `ARMED.read()`, whose lock acquisition provides the real
    // synchronization, so their Relaxed fast-path load stays sound.
    ACTIVE.store(true, Ordering::Release);
    telemetry
}

/// Disarms telemetry: every hook goes back to a single relaxed load.
pub fn clear() {
    // ORDERING: Release; see install(). A racing hook that still sees
    // the stale `true` just takes the slow path and finds `None`.
    ACTIVE.store(false, Ordering::Release);
    *ARMED.write().unwrap_or_else(PoisonError::into_inner) = None;
}

/// `true` while a registry is installed.
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// The armed registry, or `None`. The unarmed fast path is one relaxed
/// atomic load — cheap enough for per-read-syscall checks.
#[inline]
pub fn armed() -> Option<Arc<Telemetry>> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    ARMED.read().unwrap_or_else(PoisonError::into_inner).clone()
}

// ---------------------------------------------------------------------
// Env-gated kernel timing
// ---------------------------------------------------------------------

fn kernel_timing_env() -> bool {
    static GATE: OnceLock<bool> = OnceLock::new();
    *GATE.get_or_init(|| {
        std::env::var("DEEPMORPH_KERNEL_TIMING")
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(false)
    })
}

/// A running per-kernel timer; records into the armed registry on drop.
#[derive(Debug)]
pub struct KernelTimer {
    telemetry: Arc<Telemetry>,
    m: u64,
    k: u64,
    n: u64,
    start: Instant,
}

impl Drop for KernelTimer {
    fn drop(&mut self) {
        let nanos = self.start.elapsed().as_nanos() as u64;
        self.telemetry
            .kernel(self.m, self.k, self.n)
            .nanos
            .record(nanos);
    }
}

/// Starts timing one GEMM of shape `(m, k, n)` — the `Backend` seam
/// hook. Returns `None` (one relaxed load) unless telemetry is armed
/// *and* `DEEPMORPH_KERNEL_TIMING=1` is set, so default builds pay
/// nothing and timed builds opt in per process.
#[inline]
pub fn kernel_timer(m: usize, k: usize, n: usize) -> Option<KernelTimer> {
    if !ACTIVE.load(Ordering::Relaxed) || !kernel_timing_env() {
        return None;
    }
    armed().map(|telemetry| KernelTimer {
        telemetry,
        m: m as u64,
        k: k as u64,
        n: n as u64,
        start: Instant::now(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unit_buckets_are_exact_and_bounds_cover_every_value() {
        for v in 0..SUB_BUCKETS {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
        // Bucket boundaries: the first value of each octave starts a new
        // sub-bucket run, and low/high brackets the value everywhere.
        for v in [
            31u64,
            32,
            33,
            63,
            64,
            65,
            127,
            128,
            1_000,
            4_095,
            4_096,
            1 << 20,
            (1 << 35) + 12345,
        ] {
            let index = bucket_index(v);
            let (low, high) = bucket_bounds(index);
            assert!(low <= v && v <= high, "value {v} outside bucket {index}");
            if index + 1 < NUM_BUCKETS {
                let (next_low, _) = bucket_bounds(index + 1);
                assert_eq!(next_low, high + 1, "gap after bucket {index}");
            }
        }
    }

    #[test]
    fn top_bucket_saturates() {
        let hist = LogHistogram::new();
        for v in [1u64 << 36, 1 << 40, u64::MAX] {
            assert_eq!(bucket_index(v), NUM_BUCKETS - 1);
            hist.record(v);
        }
        let snap = hist.snapshot();
        assert_eq!(snap.buckets[NUM_BUCKETS - 1], 3);
        assert_eq!(snap.count(), 3);
        assert_eq!(snap.max(), u64::MAX);
        assert_eq!(snap.quantile(0.5), u64::MAX);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 10_000;
        let hist = LogHistogram::new();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let hist = &hist;
                scope.spawn(move || {
                    for i in 0..PER_THREAD {
                        // Deterministic spread across many octaves.
                        let v = ((t * PER_THREAD + i) as u64).wrapping_mul(2654435761) % (1 << 22);
                        hist.record(v);
                    }
                });
            }
        });
        let snap = hist.snapshot();
        assert_eq!(snap.count(), (THREADS * PER_THREAD) as u64);
        // Exactness, not just totals: replay the same values serially.
        let serial = LogHistogram::new();
        for t in 0..THREADS {
            for i in 0..PER_THREAD {
                let v = ((t * PER_THREAD + i) as u64).wrapping_mul(2654435761) % (1 << 22);
                serial.record(v);
            }
        }
        assert_eq!(snap, serial.snapshot());
    }

    #[test]
    fn merge_adds_bucketwise() {
        let a = LogHistogram::new();
        let b = LogHistogram::new();
        a.record(5);
        a.record(100);
        b.record(5);
        b.record(70_000);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 4);
        assert_eq!(merged.buckets[5], 2);
    }

    #[test]
    fn slow_ring_keeps_the_slowest() {
        let slow = SlowTraces::new(3);
        for (id, total_us) in [(1u64, 10u64), (2, 50), (3, 5), (4, 40), (5, 60), (6, 1)] {
            slow.offer(Trace {
                id,
                total_us,
                stages: [0; STAGE_COUNT],
            });
        }
        let kept = slow.snapshot();
        assert_eq!(
            kept.iter().map(|t| t.id).collect::<Vec<_>>(),
            vec![5, 2, 4],
            "slowest three, slowest first"
        );
    }

    #[test]
    fn version_stats_key_by_fingerprint_and_rate_is_safe() {
        let telemetry = Telemetry::new(TelemetryConfig::default());
        let v1 = telemetry.version("aa".repeat(16).as_str());
        let again = telemetry.version("aa".repeat(16).as_str());
        assert!(Arc::ptr_eq(&v1, &again));
        v1.requests.add(4);
        v1.labeled.add(2);
        v1.misclassified.add(1);
        telemetry.version("bb".repeat(16).as_str()).requests.add(1);
        let snap = telemetry.snapshot();
        assert_eq!(snap.versions.len(), 2);
        assert_eq!(snap.versions[0].misclassification_rate(), 0.5);
        assert_eq!(snap.versions[1].misclassification_rate(), 0.0);
    }

    #[test]
    fn exposition_renders_parseable_lines() {
        let telemetry = Telemetry::new(TelemetryConfig::default());
        telemetry.record_request(1234);
        telemetry.record_stage(Stage::Compute, 900);
        let v = telemetry.version("cd".repeat(16).as_str());
        v.requests.add(3);
        v.labeled.add(3);
        v.misclassified.add(1);
        let text = telemetry.snapshot().to_prometheus();
        let mut samples = 0;
        for line in text.lines() {
            if line.starts_with('#') || line.is_empty() {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("name value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparseable sample: {line}");
            samples += 1;
        }
        assert!(samples > 20, "only {samples} samples rendered");
        assert!(text.contains("deepmorph_version_misclassification_rate"));
    }

    #[test]
    fn arming_is_process_global_and_clear_disarms() {
        clear();
        assert!(armed().is_none());
        assert!(!is_active());
        let t = install(TelemetryConfig::default());
        assert!(is_active());
        let seen = armed().expect("armed after install");
        assert!(Arc::ptr_eq(&t, &seen));
        clear();
        assert!(armed().is_none());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The histogram quantile is within one bucket of the exact
        /// sorted-sample quantile.
        #[test]
        fn quantiles_match_sorted_truth_within_one_bucket(
            values in proptest::collection::vec(0u64..(1 << 30), 1..400),
            q in 0.01f64..1.0,
        ) {
            let hist = LogHistogram::new();
            for &v in &values {
                hist.record(v);
            }
            let mut sorted = values.clone();
            sorted.sort_unstable();
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let estimate = hist.snapshot().quantile(q);
            let diff = bucket_index(estimate).abs_diff(bucket_index(truth));
            prop_assert!(
                diff <= 1,
                "estimate {estimate} (bucket {}) vs truth {truth} (bucket {})",
                bucket_index(estimate),
                bucket_index(truth)
            );
        }
    }
}
