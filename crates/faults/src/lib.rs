//! Seeded, deterministic fault injection for the DeepMorph serving stack.
//!
//! Dependability claims are only as good as the faults they were tested
//! against. This crate provides a process-global, *deterministic* fault plan
//! that the serving stack consults at its three fault seams:
//!
//! - **filesystem** — torn or failed renames and failed writes in the model
//!   registry's publish path and the artifact store ([`rename`], [`write()`]);
//! - **transport** — dropped, truncated, stalled, or reset frames around the
//!   length-prefixed wire protocol ([`net_action`]);
//! - **compute** — a worker panic mid-batch or an artificially slow batch
//!   ([`compute_action`]).
//!
//! Determinism is the point: a decision for the *n*-th visit to a fault site
//! is a pure function of `(plan seed, fault kind, n)`, hashed with a
//! splitmix64 finalizer and compared against the configured rate. Re-running
//! a chaos suite with the same seed replays the same multiset of injected
//! faults, so every chaos failure is reproducible. No randomness source, no
//! clock, no dependencies.
//!
//! When no plan is installed (the default), every hook is a single relaxed
//! atomic load returning "no fault" — release builds that never call
//! [`install`] behave bitwise-identically to a build without this crate.
//!
//! ```
//! use deepmorph_faults as faults;
//!
//! faults::install(faults::FaultPlan::new(42).with(faults::Fault::NetDropFrame, 0.25));
//! let fired = (0..1000).filter(|_| faults::decide(faults::Fault::NetDropFrame)).count();
//! assert!(fired > 150 && fired < 350, "rate is honored statistically: {fired}");
//! faults::clear();
//! assert!(!faults::decide(faults::Fault::NetDropFrame));
//! ```

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Duration;
use std::{fs, io};

/// One injectable fault kind; each kind has an independent rate and visit
/// counter in the installed [`FaultPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Fault {
    /// `rename(tmp, final)` fails with an injected I/O error, leaving the
    /// temporary file behind (a crash between write and rename).
    FsRenameFail,
    /// The source file is truncated to half its length just before a
    /// successful rename — a torn write that commits a partial container.
    FsTornRename,
    /// `write(path, bytes)` fails outright with an injected I/O error.
    FsWriteFail,
    /// A response frame is silently discarded instead of written.
    NetDropFrame,
    /// Only a prefix of the frame is written, then the connection is shut
    /// down — the peer sees a truncated stream.
    NetPartialFrame,
    /// The frame is written only after an injected stall
    /// ([`FaultPlan::with_stall`]).
    NetStallFrame,
    /// The connection is shut down before the frame is written — the peer
    /// sees a reset/EOF.
    NetResetFrame,
    /// The serving worker panics mid-batch (contained by the scheduler).
    ComputePanic,
    /// The batch takes an injected extra delay ([`FaultPlan::with_slow`])
    /// before compute — used to drive requests past their deadlines.
    ComputeSlowBatch,
}

/// Every fault kind, in wire/report order.
pub const ALL_FAULTS: [Fault; 9] = [
    Fault::FsRenameFail,
    Fault::FsTornRename,
    Fault::FsWriteFail,
    Fault::NetDropFrame,
    Fault::NetPartialFrame,
    Fault::NetStallFrame,
    Fault::NetResetFrame,
    Fault::ComputePanic,
    Fault::ComputeSlowBatch,
];

impl Fault {
    fn index(self) -> usize {
        match self {
            Fault::FsRenameFail => 0,
            Fault::FsTornRename => 1,
            Fault::FsWriteFail => 2,
            Fault::NetDropFrame => 3,
            Fault::NetPartialFrame => 4,
            Fault::NetStallFrame => 5,
            Fault::NetResetFrame => 6,
            Fault::ComputePanic => 7,
            Fault::ComputeSlowBatch => 8,
        }
    }

    /// Stable dotted name used in plans, reports, and bench JSON.
    pub fn name(self) -> &'static str {
        match self {
            Fault::FsRenameFail => "fs.rename_fail",
            Fault::FsTornRename => "fs.torn_rename",
            Fault::FsWriteFail => "fs.write_fail",
            Fault::NetDropFrame => "net.drop",
            Fault::NetPartialFrame => "net.partial",
            Fault::NetStallFrame => "net.stall",
            Fault::NetResetFrame => "net.reset",
            Fault::ComputePanic => "compute.panic",
            Fault::ComputeSlowBatch => "compute.slow",
        }
    }
}

/// A reproducible fault plan: a seed plus an injection rate per fault kind.
///
/// Rates are probabilities in `[0, 1]` evaluated deterministically per visit;
/// `0` (the default for every kind) never fires, `1` always fires.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    seed: u64,
    rates: [f64; ALL_FAULTS.len()],
    stall: Duration,
    slow: Duration,
}

impl FaultPlan {
    /// A plan with the given seed and every rate at zero.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rates: [0.0; ALL_FAULTS.len()],
            stall: Duration::from_millis(50),
            slow: Duration::from_millis(20),
        }
    }

    /// Sets the injection rate for one fault kind (clamped to `[0, 1]`).
    pub fn with(mut self, fault: Fault, rate: f64) -> Self {
        self.rates[fault.index()] = rate.clamp(0.0, 1.0);
        self
    }

    /// Sets the delay injected by [`Fault::NetStallFrame`] (default 50 ms).
    pub fn with_stall(mut self, stall: Duration) -> Self {
        self.stall = stall;
        self
    }

    /// Sets the delay injected by [`Fault::ComputeSlowBatch`] (default 20 ms).
    pub fn with_slow(mut self, slow: Duration) -> Self {
        self.slow = slow;
        self
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The configured rate for one fault kind.
    pub fn rate(&self, fault: Fault) -> f64 {
        self.rates[fault.index()]
    }
}

/// Cumulative injection counts for one fault kind, reported by [`report`].
#[derive(Clone, Debug)]
pub struct FaultCount {
    /// Stable dotted fault name ([`Fault::name`]).
    pub fault: &'static str,
    /// How many times the site was consulted.
    pub visits: u64,
    /// How many of those visits injected the fault.
    pub injected: u64,
}

struct Armed {
    plan: FaultPlan,
    visits: [AtomicU64; ALL_FAULTS.len()],
    injected: [AtomicU64; ALL_FAULTS.len()],
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static ARMED: RwLock<Option<Arc<Armed>>> = RwLock::new(None);

fn armed() -> Option<Arc<Armed>> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    ARMED.read().unwrap_or_else(PoisonError::into_inner).clone()
}

/// Installs a fault plan process-wide, resetting all counters. Replaces any
/// previously installed plan.
pub fn install(plan: FaultPlan) {
    let armed = Arc::new(Armed {
        plan,
        visits: Default::default(),
        injected: Default::default(),
    });
    *ARMED.write().unwrap_or_else(PoisonError::into_inner) = Some(armed);
    // ORDERING: Release orders the flag after the plan publish above.
    // The flag is only a hint: readers that see it re-check under
    // `ARMED.read()`, whose lock acquisition provides the real
    // synchronization, so their Relaxed fast-path load stays sound.
    ACTIVE.store(true, Ordering::Release);
}

/// Removes the installed plan; every subsequent hook reports "no fault".
pub fn clear() {
    // ORDERING: Release; see install(). A racing hook that still sees
    // the stale `true` just takes the slow path and finds `None`.
    ACTIVE.store(false, Ordering::Release);
    *ARMED.write().unwrap_or_else(PoisonError::into_inner) = None;
}

/// Whether a fault plan is currently installed.
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Per-fault visit/injection counts for the installed plan (empty when no
/// plan is installed).
pub fn report() -> Vec<FaultCount> {
    let Some(armed) = armed() else {
        return Vec::new();
    };
    ALL_FAULTS
        .iter()
        .map(|&f| FaultCount {
            fault: f.name(),
            visits: armed.visits[f.index()].load(Ordering::Relaxed),
            injected: armed.injected[f.index()].load(Ordering::Relaxed),
        })
        .collect()
}

/// splitmix64 finalizer: a strong 64-bit mix, the standard seed-expander.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Should the `n`-th visit to `fault` fire under `plan`? Pure function —
/// the whole crate's determinism rests here.
fn fires(plan: &FaultPlan, fault: Fault, n: u64) -> bool {
    let rate = plan.rates[fault.index()];
    if rate <= 0.0 {
        return false;
    }
    if rate >= 1.0 {
        return true;
    }
    let h = mix(plan.seed ^ mix((fault.index() as u64 + 1) << 32 ^ n));
    // Top 53 bits → uniform f64 in [0, 1).
    let unit = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    unit < rate
}

/// Consults the installed plan for one visit to a fault site. Counts the
/// visit, and returns whether the fault should be injected. Always `false`
/// when no plan is installed.
pub fn decide(fault: Fault) -> bool {
    let Some(armed) = armed() else {
        return false;
    };
    let n = armed.visits[fault.index()].fetch_add(1, Ordering::Relaxed);
    let fire = fires(&armed.plan, fault, n);
    if fire {
        armed.injected[fault.index()].fetch_add(1, Ordering::Relaxed);
    }
    fire
}

fn injected_err(what: &str) -> io::Error {
    io::Error::other(format!("injected fault: {what}"))
}

/// `fs::write` with [`Fault::FsWriteFail`] injection.
pub fn write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if decide(Fault::FsWriteFail) {
        return Err(injected_err("fs write failed"));
    }
    fs::write(path, bytes)
}

/// `fs::rename` with [`Fault::FsRenameFail`] (rename fails, temp file left
/// behind) and [`Fault::FsTornRename`] (source truncated to half its length
/// before a successful rename — a torn commit) injection.
pub fn rename(from: &Path, to: &Path) -> io::Result<()> {
    if decide(Fault::FsRenameFail) {
        return Err(injected_err("fs rename failed"));
    }
    if decide(Fault::FsTornRename) {
        if let Ok(meta) = fs::metadata(from) {
            let torn = meta.len() / 2;
            if let Ok(f) = fs::OpenOptions::new().write(true).open(from) {
                let _ = f.set_len(torn);
            }
        }
    }
    fs::rename(from, to)
}

/// What a transport write should do to the frame it is about to send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NetAction {
    /// Write the frame normally.
    Deliver,
    /// Silently discard the frame (claim success).
    Drop,
    /// Write only a prefix of the frame, then shut the connection down.
    Truncate,
    /// Sleep for the given duration, then write the frame normally.
    Stall(Duration),
    /// Shut the connection down without writing.
    Reset,
}

/// Consults the plan for one outgoing frame. At most one transport fault
/// fires per frame; kinds are consulted in drop → partial → stall → reset
/// order.
pub fn net_action() -> NetAction {
    if !is_active() {
        return NetAction::Deliver;
    }
    if decide(Fault::NetDropFrame) {
        return NetAction::Drop;
    }
    if decide(Fault::NetPartialFrame) {
        return NetAction::Truncate;
    }
    if decide(Fault::NetStallFrame) {
        let stall = armed().map(|a| a.plan.stall).unwrap_or_default();
        return NetAction::Stall(stall);
    }
    if decide(Fault::NetResetFrame) {
        return NetAction::Reset;
    }
    NetAction::Deliver
}

/// What a serving worker should do to the batch it is about to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ComputeAction {
    /// Run the batch normally.
    Run,
    /// Panic (the scheduler must contain it).
    Panic,
    /// Sleep for the given duration, then run the batch.
    Slow(Duration),
}

/// Consults the plan for one batch about to enter compute.
pub fn compute_action() -> ComputeAction {
    if !is_active() {
        return ComputeAction::Run;
    }
    if decide(Fault::ComputePanic) {
        return ComputeAction::Panic;
    }
    if decide(Fault::ComputeSlowBatch) {
        let slow = armed().map(|a| a.plan.slow).unwrap_or_default();
        return ComputeAction::Slow(slow);
    }
    ComputeAction::Run
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The plan is process-global; tests that install plans must not overlap.
    static PLAN_GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn no_plan_never_fires() {
        let _g = PLAN_GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        clear();
        assert!(!is_active());
        for f in ALL_FAULTS {
            assert!(!decide(f));
        }
        assert_eq!(net_action(), NetAction::Deliver);
        assert_eq!(compute_action(), ComputeAction::Run);
        assert!(report().is_empty());
    }

    #[test]
    fn decisions_are_deterministic_in_seed_and_visit() {
        let plan = FaultPlan::new(7).with(Fault::NetDropFrame, 0.3);
        let a: Vec<bool> = (0..256)
            .map(|n| fires(&plan, Fault::NetDropFrame, n))
            .collect();
        let b: Vec<bool> = (0..256)
            .map(|n| fires(&plan, Fault::NetDropFrame, n))
            .collect();
        assert_eq!(a, b, "same seed, same visit → same decision");
        let other = FaultPlan::new(8).with(Fault::NetDropFrame, 0.3);
        let c: Vec<bool> = (0..256)
            .map(|n| fires(&other, Fault::NetDropFrame, n))
            .collect();
        assert_ne!(a, c, "a different seed changes the decision sequence");
        let fired = a.iter().filter(|&&x| x).count();
        assert!(
            (40..=120).contains(&fired),
            "rate 0.3 over 256 visits: {fired}"
        );
    }

    #[test]
    fn extreme_rates_are_exact() {
        let plan = FaultPlan::new(1)
            .with(Fault::ComputePanic, 1.0)
            .with(Fault::ComputeSlowBatch, 0.0);
        for n in 0..64 {
            assert!(fires(&plan, Fault::ComputePanic, n));
            assert!(!fires(&plan, Fault::ComputeSlowBatch, n));
        }
    }

    #[test]
    fn install_counts_and_clear_resets() {
        let _g = PLAN_GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        install(FaultPlan::new(42).with(Fault::FsWriteFail, 1.0));
        assert!(is_active());
        let dir = std::env::temp_dir().join(format!("deepmorph-faults-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("probe.bin");
        assert!(write(&path, b"x").is_err(), "rate 1.0 write always fails");
        assert!(!path.exists());
        let counts = report();
        let wf = counts.iter().find(|c| c.fault == "fs.write_fail").unwrap();
        assert_eq!((wf.visits, wf.injected), (1, 1));
        clear();
        assert!(write(&path, b"x").is_ok(), "cleared plan stops injecting");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_rename_truncates_source() {
        let _g = PLAN_GUARD.lock().unwrap_or_else(PoisonError::into_inner);
        let dir =
            std::env::temp_dir().join(format!("deepmorph-faults-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let from = dir.join("a.tmp");
        let to = dir.join("a.bin");
        std::fs::write(&from, vec![0xabu8; 100]).unwrap();
        install(FaultPlan::new(3).with(Fault::FsTornRename, 1.0));
        rename(&from, &to).unwrap();
        clear();
        assert_eq!(
            std::fs::metadata(&to).unwrap().len(),
            50,
            "torn commit kept half"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
