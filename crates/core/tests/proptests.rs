//! Property-based tests for DeepMorph's analysis invariants.

use deepmorph::classify::{
    AlignmentMetric, CaseScores, ClassifierConfig, DefectClassifier, PopulationEvidence,
};
use deepmorph::footprint::{Footprint, FootprintSet};
use deepmorph::pattern::ClassPatterns;
use deepmorph::report::DefectRatios;
use deepmorph::specifics::FootprintSpecifics;
use proptest::prelude::*;

/// Strategy: a probability distribution over `k` classes.
fn distribution(k: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(0.01f32..1.0, k).prop_map(|mut v| {
        let s: f32 = v.iter().sum();
        for x in &mut v {
            *x /= s;
        }
        v
    })
}

/// Strategy: a footprint of `depth` layers over `k` classes.
fn footprint(depth: usize, k: usize) -> impl Strategy<Value = Footprint> {
    proptest::collection::vec(distribution(k), depth).prop_map(Footprint::new)
}

/// A small but non-degenerate pattern fixture.
fn patterns_fixture(k: usize, depth: usize) -> ClassPatterns {
    let mut fps = Vec::new();
    let mut labels = Vec::new();
    for c in 0..k {
        for _ in 0..5 {
            let mut layers = Vec::new();
            for l in 0..depth {
                let sharp = (l + 1) as f32 / depth as f32;
                let mut dist = vec![(1.0 - sharp) / k as f32; k];
                dist[c] += sharp;
                layers.push(dist);
            }
            fps.push(Footprint::new(layers));
            labels.push(c);
        }
    }
    let set = FootprintSet::new(fps, (0..depth).map(|l| format!("l{l}")).collect(), k);
    ClassPatterns::learn(&set, &labels, vec![0.8; depth]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn specifics_are_bounded(fp in footprint(4, 5), t in 0usize..5, p in 0usize..5) {
        prop_assume!(t != p);
        let patterns = patterns_fixture(5, 4);
        for metric in [AlignmentMetric::JensenShannon, AlignmentMetric::Cosine] {
            let s = FootprintSpecifics::compute(&fp, t, p, &patterns, metric);
            for v in [
                s.early_align_true,
                s.late_align_true,
                s.late_align_pred,
                s.best_align_mean,
                s.early_margin,
                s.flip_fraction,
                s.final_entropy,
                s.final_conf_pred,
                s.novelty,
            ] {
                prop_assert!((0.0..=1.0 + 1e-4).contains(&v), "{v} out of range ({s:?})");
            }
        }
    }

    #[test]
    fn case_scores_are_nonnegative_and_distribution_normalizes(
        fp in footprint(4, 5), t in 0usize..5, p in 0usize..5,
    ) {
        prop_assume!(t != p);
        let patterns = patterns_fixture(5, 4);
        let s = FootprintSpecifics::compute(&fp, t, p, &patterns, AlignmentMetric::JensenShannon);
        let classifier = DefectClassifier::new(ClassifierConfig::default());
        let pop = PopulationEvidence::compute(std::slice::from_ref(&s), 5);
        let scores = classifier.score_case(&s, &patterns, &pop);
        prop_assert!(scores.scores.iter().all(|&v| v >= 0.0));
        let dist = scores.distribution();
        prop_assert!((dist.iter().sum::<f32>() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn classify_ratios_are_a_distribution(
        fps in proptest::collection::vec(footprint(4, 5), 1..20),
        seed in 0u64..100,
    ) {
        let patterns = patterns_fixture(5, 4);
        let specifics: Vec<FootprintSpecifics> = fps
            .iter()
            .enumerate()
            .map(|(i, fp)| {
                let t = (i + seed as usize) % 5;
                let p = (t + 1 + i % 4) % 5;
                FootprintSpecifics::compute(fp, t, p, &patterns, AlignmentMetric::JensenShannon)
            })
            .collect();
        let classifier = DefectClassifier::new(ClassifierConfig::default());
        let (scores, ratios) = classifier.classify(&specifics, &patterns);
        prop_assert_eq!(scores.len(), specifics.len());
        prop_assert!((ratios.iter().sum::<f32>() - 1.0).abs() < 1e-4);
        // Ratios agree with per-case assignments.
        let mut counted = [0.0f32; 3];
        for s in &scores {
            counted[s.assigned().index()] += 1.0 / scores.len() as f32;
        }
        for (a, b) in counted.iter().zip(&ratios) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn population_evidence_is_bounded(
        labels in proptest::collection::vec((0usize..5, 0usize..5), 1..30),
    ) {
        let patterns = patterns_fixture(5, 4);
        let specifics: Vec<FootprintSpecifics> = labels
            .iter()
            .filter(|(t, p)| t != p)
            .map(|&(t, p)| {
                let fp = Footprint::new(vec![vec![0.2; 5]; 4]);
                FootprintSpecifics::compute(&fp, t, p, &patterns, AlignmentMetric::JensenShannon)
            })
            .collect();
        let pop = PopulationEvidence::compute(&specifics, 5);
        for v in [pop.pair_concentration, pop.true_concentration, pop.pred_concentration] {
            prop_assert!((0.0..=1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn ratios_dominant_matches_argmax(r in proptest::collection::vec(0.0f32..1.0, 3)) {
        let ratios = DefectRatios::new([r[0], r[1], r[2]]);
        match ratios.dominant() {
            Some(kind) => {
                let arr = ratios.as_array();
                let max = arr.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                prop_assert!((ratios.get(kind) - max).abs() < 1e-6);
            }
            None => prop_assert!(r.iter().all(|&v| v == 0.0)),
        }
    }

    #[test]
    fn flip_fraction_monotone_in_prefix(k in 2usize..6, depth in 1usize..6) {
        // A footprint that always argmaxes class 0 never flips for label 0
        // and flips immediately for any other label.
        let mut dist = vec![0.1 / (k - 1) as f32; k];
        dist[0] = 0.9;
        let fp = Footprint::new(vec![dist; depth]);
        prop_assert_eq!(fp.flip_fraction(0), 1.0);
        prop_assert_eq!(fp.flip_fraction(1), 0.0);
    }
}

#[test]
fn case_scores_tie_breaks_deterministically() {
    let s = CaseScores { scores: [0.5; 3] };
    // argmax of equal scores returns the first (ITD) — stable behavior.
    assert_eq!(s.assigned().index(), 0);
}
