//! The softmax-instrumented model.
//!
//! DeepMorph's first step (paper Fig. 1) augments the target model with one
//! *auxiliary softmax layer* per hidden stage. The backbone stays frozen;
//! each probe is a softmax regression trained on the stage's activations
//! (spatial feature maps are summarized by global average pooling first).
//! Probes are trained on the *training set*, so their outputs express each
//! layer's features in the vocabulary of target classes — which is what
//! makes footprints comparable across layers.

use deepmorph_nn::layer::Mode;
use deepmorph_nn::prelude::NodeId;
use deepmorph_tensor::conv::global_avg_pool;
use deepmorph_tensor::init::{stream_rng, Init};
use deepmorph_tensor::{workspace, Tensor};
use rand::seq::SliceRandom;

use deepmorph_models::{ModelHandle, ProbePoint};

use crate::footprint::{Footprint, FootprintSet};
use crate::{DeepMorphError, Result};

/// Hyper-parameters for auxiliary-probe training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeTrainingConfig {
    /// Gradient-descent epochs per probe.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning rate.
    pub learning_rate: f32,
    /// Cap on the number of training samples used for probe fitting (the
    /// full training set is subsampled beyond this, keeping class balance
    /// approximately via shuffling).
    pub max_samples: usize,
    /// Base seed for probe weight init and subsampling.
    pub seed: u64,
}

impl Default for ProbeTrainingConfig {
    fn default() -> Self {
        ProbeTrainingConfig {
            epochs: 40,
            batch_size: 128,
            learning_rate: 0.3,
            max_samples: 1500,
            seed: 0xD33F,
        }
    }
}

/// Batch size used for probe-feature extraction and footprint batching.
/// Fixed (not configurable) so cached artifacts and fresh runs always
/// batch identically.
pub(crate) const PROBE_BATCH: usize = 64;

/// One trained auxiliary softmax layer.
#[derive(Debug, Clone)]
pub struct TrainedProbe {
    point: ProbePoint,
    /// `[classes, features]` softmax-regression weights.
    weight: Tensor,
    /// `[classes]` bias.
    bias: Tensor,
    /// Training-set accuracy of this probe (how well this stage's features
    /// already separate the classes).
    pub train_accuracy: f32,
}

impl TrainedProbe {
    /// Reassembles a probe from stored parts (artifact deserialization).
    ///
    /// # Errors
    ///
    /// Returns [`DeepMorphError::Instrumentation`] if the tensors disagree
    /// with the probe point's feature count.
    pub fn from_parts(
        point: ProbePoint,
        weight: Tensor,
        bias: Tensor,
        train_accuracy: f32,
    ) -> Result<Self> {
        if weight.ndim() != 2 || weight.shape()[1] != point.features {
            return Err(DeepMorphError::Instrumentation {
                reason: format!(
                    "probe `{}` weight shape {:?} disagrees with {} features",
                    point.label,
                    weight.shape(),
                    point.features
                ),
            });
        }
        if bias.shape() != [weight.shape()[0]] {
            return Err(DeepMorphError::Instrumentation {
                reason: format!(
                    "probe `{}` bias shape {:?} disagrees with weight {:?}",
                    point.label,
                    bias.shape(),
                    weight.shape()
                ),
            });
        }
        Ok(TrainedProbe {
            point,
            weight,
            bias,
            train_accuracy,
        })
    }

    /// The probe's attachment point metadata.
    pub fn point(&self) -> &ProbePoint {
        &self.point
    }

    /// The `[classes, features]` softmax-regression weights.
    pub fn weight(&self) -> &Tensor {
        &self.weight
    }

    /// The `[classes]` bias.
    pub fn bias(&self) -> &Tensor {
        &self.bias
    }

    /// Class-probability rows for a feature matrix `[n, features]`.
    ///
    /// # Errors
    ///
    /// Returns a shape error if `features` disagrees with the probe.
    pub fn predict_probs(&self, features: &Tensor) -> Result<Tensor> {
        let mut logits = features.matmul_nt(&self.weight)?;
        logits.add_row_broadcast(&self.bias)?;
        Ok(logits.softmax_rows()?)
    }
}

/// A frozen backbone plus its trained probes — the paper's
/// *softmax-instrumented model*.
#[derive(Debug)]
pub struct InstrumentedModel {
    model: ModelHandle,
    probes: Vec<TrainedProbe>,
    num_classes: usize,
    batch_size: usize,
}

impl InstrumentedModel {
    /// Builds the instrumented model: extracts stage activations for the
    /// training set and fits one softmax probe per stage.
    ///
    /// # Errors
    ///
    /// Returns [`DeepMorphError::Instrumentation`] if the model exposes no
    /// probe points, and propagates network errors.
    pub fn build(
        mut model: ModelHandle,
        train_images: &Tensor,
        train_labels: &[usize],
        num_classes: usize,
        config: &ProbeTrainingConfig,
    ) -> Result<Self> {
        if model.probes.is_empty() {
            return Err(DeepMorphError::Instrumentation {
                reason: "model exposes no probe points".into(),
            });
        }
        let n = train_images.shape()[0];
        if n == 0 || train_labels.len() != n {
            return Err(DeepMorphError::Instrumentation {
                reason: format!(
                    "probe training needs labeled samples ({n} images, {} labels)",
                    train_labels.len()
                ),
            });
        }
        let mut rng = stream_rng(config.seed, "probe-subsample");
        // Subsample (shuffled, so approximately stratified for balanced
        // inputs) to bound probe-fitting cost.
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        order.truncate(config.max_samples.max(1));
        let sub_images = deepmorph_nn::train::gather_batch(train_images, &order)?;
        let sub_labels: Vec<usize> = order.iter().map(|&i| train_labels[i]).collect();

        let batch_size = PROBE_BATCH;
        let feature_mats = extract_probe_features(&mut model, &sub_images, batch_size)?;

        let probes = fit_probes(
            model.probes.clone(),
            &feature_mats,
            &sub_labels,
            num_classes,
            config,
        )?;
        Ok(InstrumentedModel {
            model,
            probes,
            num_classes,
            batch_size,
        })
    }

    /// Reassembles an instrumented model from a backbone and its stored
    /// probes (artifact deserialization). The probes must match the
    /// model's probe points one-to-one, in order.
    ///
    /// # Errors
    ///
    /// Returns [`DeepMorphError::Instrumentation`] on any probe/point
    /// disagreement.
    pub fn from_parts(
        model: ModelHandle,
        probes: Vec<TrainedProbe>,
        num_classes: usize,
    ) -> Result<Self> {
        if probes.len() != model.probes.len() {
            return Err(DeepMorphError::Instrumentation {
                reason: format!(
                    "{} stored probes for a model with {} probe points",
                    probes.len(),
                    model.probes.len()
                ),
            });
        }
        for (probe, point) in probes.iter().zip(&model.probes) {
            if probe.point != *point {
                return Err(DeepMorphError::Instrumentation {
                    reason: format!(
                        "stored probe `{}` disagrees with model probe point `{}`",
                        probe.point.label, point.label
                    ),
                });
            }
        }
        Ok(InstrumentedModel {
            model,
            probes,
            num_classes,
            batch_size: PROBE_BATCH,
        })
    }

    /// The trained probes, input → output order.
    pub fn probes(&self) -> &[TrainedProbe] {
        &self.probes
    }

    /// Number of target classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Mutable access to the wrapped model (e.g. for predictions).
    pub fn model_mut(&mut self) -> &mut ModelHandle {
        &mut self.model
    }

    /// Consumes the instrumented model, returning the backbone.
    pub fn into_model(self) -> ModelHandle {
        self.model
    }

    /// Extracts the data-flow footprints of `images`.
    ///
    /// # Errors
    ///
    /// Propagates network errors.
    pub fn footprints(&mut self, images: &Tensor) -> Result<FootprintSet> {
        let n = images.shape()[0];
        let depth = self.probes.len();
        let mut per_case: Vec<Vec<Vec<f32>>> = vec![Vec::with_capacity(depth); n];

        let feature_mats = extract_probe_features(&mut self.model, images, self.batch_size)?;
        for (probe, feats) in self.probes.iter().zip(&feature_mats) {
            let probs = probe.predict_probs(feats)?;
            for (i, case) in per_case.iter_mut().enumerate() {
                case.push(probs.row(i)?.to_vec());
            }
            workspace::recycle_tensor(probs);
        }
        let footprints = per_case.into_iter().map(Footprint::new).collect();
        let labels = self.probes.iter().map(|p| p.point.label.clone()).collect();
        Ok(FootprintSet::new(footprints, labels, self.num_classes))
    }

    /// Per-probe training accuracies — the layer-wise "how far have the
    /// features come" curve, also used as the model-health signal by the
    /// defect classifier.
    pub fn probe_accuracies(&self) -> Vec<f32> {
        self.probes.iter().map(|p| p.train_accuracy).collect()
    }
}

/// Runs the backbone over `images` in batches and returns, per probe
/// point, the probe-input feature matrix `[n, features]` (GAP for spatial
/// stages, identity for flat ones).
fn extract_probe_features(
    model: &mut ModelHandle,
    images: &Tensor,
    batch_size: usize,
) -> Result<Vec<Tensor>> {
    let probe_nodes: Vec<NodeId> = model.probes.iter().map(|p| p.node).collect();
    let n = images.shape()[0];
    let mut parts: Vec<Vec<Tensor>> = vec![Vec::new(); probe_nodes.len()];
    let mut idx: Vec<usize> = Vec::with_capacity(batch_size);
    let mut start = 0;
    while start < n {
        let end = (start + batch_size).min(n);
        idx.clear();
        idx.extend(start..end);
        let batch = deepmorph_nn::train::gather_batch(images, &idx)?;
        let (out, collected) = model
            .graph
            .forward_collect(&batch, Mode::Eval, &probe_nodes)?;
        workspace::recycle_tensor(batch);
        workspace::recycle_tensor(out);
        for (slot, activation) in parts.iter_mut().zip(collected) {
            let feats = if activation.ndim() == 4 {
                let pooled = global_avg_pool(&activation)?;
                workspace::recycle_tensor(activation);
                pooled
            } else {
                activation
            };
            slot.push(feats);
        }
        start = end;
    }
    parts
        .into_iter()
        .map(|chunks| {
            let refs: Vec<&Tensor> = chunks.iter().collect();
            Tensor::concat_rows(&refs).map_err(Into::into)
        })
        .collect()
}

/// Fits every probe. Each probe derives its own RNG stream from its label
/// and trains on its own feature matrix, so probes are fully independent:
/// with the `parallel` feature they train on worker threads (one result
/// slot per probe, order preserved — output is identical to the serial
/// loop).
fn fit_probes(
    points: Vec<ProbePoint>,
    feature_mats: &[Tensor],
    labels: &[usize],
    num_classes: usize,
    config: &ProbeTrainingConfig,
) -> Result<Vec<TrainedProbe>> {
    #[cfg(feature = "parallel")]
    if points.len() > 1 && deepmorph_parallel::max_threads() > 1 {
        return deepmorph_parallel::par_map(points.len(), |i| {
            fit_probe(
                points[i].clone(),
                &feature_mats[i],
                labels,
                num_classes,
                config,
            )
        })
        .into_iter()
        .collect();
    }
    points
        .into_iter()
        .zip(feature_mats)
        .map(|(point, feats)| fit_probe(point, feats, labels, num_classes, config))
        .collect()
}

/// Fits one softmax regression probe on a fixed feature matrix.
fn fit_probe(
    point: ProbePoint,
    features: &Tensor,
    labels: &[usize],
    num_classes: usize,
    config: &ProbeTrainingConfig,
) -> Result<TrainedProbe> {
    let (n, f) = (features.shape()[0], features.shape()[1]);
    let mut rng = stream_rng(config.seed, &format!("probe-{}", point.label));
    let mut weight = Init::XavierUniform.materialize(&[num_classes, f], f, num_classes, &mut rng);
    let mut bias = Tensor::zeros(&[num_classes]);
    // Standardize features per dimension for conditioning; fold the
    // statistics into the stored weights afterwards so prediction needs no
    // extra state.
    let (mean, inv_std) = feature_stats(features);
    let x = standardized(features, &mean, &inv_std)?;

    let mut order: Vec<usize> = (0..n).collect();
    let loss = deepmorph_nn::loss::SoftmaxCrossEntropy::new();
    // Per-batch label scratch; all tensor scratch cycles through the
    // thread's workspace arena, so after the first epoch warms it the
    // probe-training loop performs no heap allocations.
    let mut by: Vec<usize> = Vec::with_capacity(config.batch_size.max(1));
    for _ in 0..config.epochs {
        order.shuffle(&mut rng);
        for chunk in order.chunks(config.batch_size.max(1)) {
            let bx = deepmorph_nn::train::gather_batch(&x, chunk)?;
            by.clear();
            by.extend(chunk.iter().map(|&i| labels[i]));
            let mut logits = bx.matmul_nt(&weight)?;
            logits.add_row_broadcast(&bias)?;
            let (_, grad) = loss.compute(&logits, &by)?;
            workspace::recycle_tensor(logits);
            // dW = grad^T X, db = column sums.
            let dw = grad.matmul_tn(&bx)?;
            workspace::recycle_tensor(bx);
            weight.axpy(-config.learning_rate, &dw)?;
            workspace::recycle_tensor(dw);
            let db = grad.sum_axis0()?;
            bias.axpy(-config.learning_rate, &db)?;
            workspace::recycle_tensor(db);
            workspace::recycle_tensor(grad);
        }
    }

    // Fold standardization into (weight, bias):
    //   w'_cj = w_cj * inv_std_j ;  b'_c = b_c - Σ_j w_cj * inv_std_j * mean_j
    let mut folded_w = weight.clone();
    let mut folded_b = bias.clone();
    for c in 0..num_classes {
        let row = folded_w.row_mut(c)?;
        let mut shift = 0.0;
        for j in 0..f {
            row[j] *= inv_std[j];
            shift += row[j] * mean[j];
        }
        folded_b.data_mut()[c] -= shift;
    }

    workspace::recycle_tensor(x);
    let probe = TrainedProbe {
        point,
        weight: folded_w,
        bias: folded_b,
        train_accuracy: 0.0,
    };
    let probs = probe.predict_probs(features)?;
    let preds = probs.argmax_rows()?;
    workspace::recycle_tensor(probs);
    let acc = deepmorph_nn::metrics::accuracy(&preds, labels);
    Ok(TrainedProbe {
        train_accuracy: acc,
        ..probe
    })
}

fn feature_stats(features: &Tensor) -> (Vec<f32>, Vec<f32>) {
    let (n, f) = (features.shape()[0], features.shape()[1]);
    let mut mean = vec![0.0f32; f];
    for i in 0..n {
        let row = &features.data()[i * f..(i + 1) * f];
        for (m, &v) in mean.iter_mut().zip(row) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n.max(1) as f32;
    }
    let mut var = vec![0.0f32; f];
    for i in 0..n {
        for j in 0..f {
            let d = features.data()[i * f + j] - mean[j];
            var[j] += d * d;
        }
    }
    let inv_std: Vec<f32> = var
        .into_iter()
        .map(|v| 1.0 / (v / n.max(1) as f32).sqrt().max(1e-4))
        .collect();
    (mean, inv_std)
}

fn standardized(features: &Tensor, mean: &[f32], inv_std: &[f32]) -> Result<Tensor> {
    let (n, f) = (features.shape()[0], features.shape()[1]);
    let mut out = features.pooled_clone();
    for i in 0..n {
        let row = out.row_mut(i)?;
        for j in 0..f {
            row[j] = (row[j] - mean[j]) * inv_std[j];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmorph_models::{build_model, ModelFamily, ModelScale, ModelSpec};
    use deepmorph_tensor::init::{gaussian, stream_rng};
    use rand::Rng;

    fn synthetic_features(
        n_per_class: usize,
        classes: usize,
        rng: &mut impl Rng,
    ) -> (Tensor, Vec<usize>) {
        // Linearly separable blobs in `classes` dimensions.
        let f = classes + 2;
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..classes {
            for _ in 0..n_per_class {
                for j in 0..f {
                    let center = if j == c { 2.0 } else { 0.0 };
                    data.push(center + gaussian(rng) * 0.4);
                }
                labels.push(c);
            }
        }
        (
            Tensor::from_vec(data, &[n_per_class * classes, f]).unwrap(),
            labels,
        )
    }

    #[test]
    fn fit_probe_learns_separable_features() {
        let mut rng = stream_rng(1, "probe-test");
        let (x, y) = synthetic_features(30, 4, &mut rng);
        let point = ProbePoint {
            node: NodeId::SOURCE,
            label: "test".into(),
            features: x.shape()[1],
            spatial: false,
        };
        let probe = fit_probe(point, &x, &y, 4, &ProbeTrainingConfig::default()).unwrap();
        assert!(
            probe.train_accuracy > 0.95,
            "probe accuracy {}",
            probe.train_accuracy
        );
        // Probabilities are well-formed.
        let probs = probe.predict_probs(&x).unwrap();
        let s: f32 = probs.row(0).unwrap().iter().sum();
        assert!((s - 1.0).abs() < 1e-4);
    }

    #[test]
    fn instrumented_model_builds_and_extracts_footprints() {
        let spec = ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [1, 16, 16], 10);
        let mut rng = stream_rng(2, "probe-test");
        let model = build_model(&spec, &mut rng).unwrap();
        // Random images + random labels: probes won't be accurate, but the
        // machinery must produce well-formed footprints.
        let n = 40;
        let images = Tensor::from_vec(
            (0..n * 256)
                .map(|i| ((i * 31) % 97) as f32 / 97.0)
                .collect(),
            &[n, 1, 16, 16],
        )
        .unwrap();
        let labels: Vec<usize> = (0..n).map(|i| i % 10).collect();
        let config = ProbeTrainingConfig {
            epochs: 3,
            ..ProbeTrainingConfig::default()
        };
        let mut inst = InstrumentedModel::build(model, &images, &labels, 10, &config).unwrap();
        assert_eq!(inst.probes().len(), 4); // LeNet probes
        let fps = inst.footprints(&images).unwrap();
        assert_eq!(fps.len(), n);
        assert_eq!(fps.depth(), 4);
        for fp in fps.iter() {
            for l in 0..fp.depth() {
                let s: f32 = fp.layer(l).iter().sum();
                assert!((s - 1.0).abs() < 1e-3);
            }
        }
        let accs = inst.probe_accuracies();
        assert_eq!(accs.len(), 4);
        assert!(accs.iter().all(|&a| (0.0..=1.0).contains(&a)));
    }

    #[test]
    fn build_rejects_empty_labels() {
        let spec = ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [1, 16, 16], 10);
        let mut rng = stream_rng(3, "probe-test");
        let model = build_model(&spec, &mut rng).unwrap();
        let images = Tensor::zeros(&[0, 1, 16, 16]);
        let err =
            InstrumentedModel::build(model, &images, &[], 10, &Default::default()).unwrap_err();
        assert!(matches!(err, DeepMorphError::Instrumentation { .. }));
    }
}
