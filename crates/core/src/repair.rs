//! Repair recommendations.
//!
//! The paper's evaluation closes the loop: "based on the defect reported
//! by DeepMorph, we modify the models accordingly and evaluate whether
//! DeepMorph is helpful to improving model performance". This module turns
//! a [`DefectReport`] into the concrete modification a developer would
//! apply:
//!
//! * ITD → collect more data for the starved classes,
//! * UTD → audit/clean the labels of the contaminated class pair,
//! * SD → strengthen the network structure.
//!
//! [`crate::scenario::Scenario::run_with_repair`] applies the plan inside
//! the synthetic testbed and measures the accuracy improvement.

use std::collections::HashMap;

use deepmorph_defects::DefectKind;

use crate::report::DefectReport;

/// A concrete, actionable repair derived from a diagnosis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepairPlan {
    /// Collect (or generate) more training data for these classes.
    CollectMoreData {
        /// The starved classes, most-affected first.
        classes: Vec<usize>,
    },
    /// Audit training labels between `suspect_label` and `executes_as`:
    /// samples labeled the former that flow like the latter are probably
    /// mislabeled.
    CleanLabels {
        /// The label under suspicion (the faulty cases' prediction).
        suspect_label: usize,
        /// The class those samples actually execute as.
        executes_as: usize,
    },
    /// The structure is the bottleneck: restore/add convolutional
    /// capacity.
    StrengthenStructure,
}

impl std::fmt::Display for RepairPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RepairPlan::CollectMoreData { classes } => {
                write!(f, "collect more training data for classes {classes:?}")
            }
            RepairPlan::CleanLabels {
                suspect_label,
                executes_as,
            } => write!(
                f,
                "audit training labels: samples labeled {suspect_label} executing as {executes_as}"
            ),
            RepairPlan::StrengthenStructure => {
                write!(
                    f,
                    "strengthen the network structure (restore conv capacity)"
                )
            }
        }
    }
}

/// Derives the repair plan from a diagnosis report.
///
/// Returns `None` when the report has no dominant defect or no cases to
/// ground the plan in.
pub fn recommend(report: &DefectReport) -> Option<RepairPlan> {
    let dominant = report.dominant()?;
    match dominant {
        DefectKind::InsufficientTrainingData => {
            // Starved classes = the true labels that dominate the
            // ITD-assigned cases, most frequent first, covering >= 80% of
            // those cases.
            let mut counts: HashMap<usize, usize> = HashMap::new();
            let mut total = 0usize;
            for case in &report.cases {
                if case.assigned == "ITD" {
                    *counts.entry(case.true_label).or_insert(0) += 1;
                    total += 1;
                }
            }
            if total == 0 {
                return None;
            }
            let mut ranked: Vec<(usize, usize)> = counts.into_iter().collect();
            ranked.sort_by_key(|&(class, n)| (std::cmp::Reverse(n), class));
            let mut classes = Vec::new();
            let mut covered = 0usize;
            for (class, n) in ranked {
                classes.push(class);
                covered += n;
                if covered * 5 >= total * 4 {
                    break;
                }
            }
            Some(RepairPlan::CollectMoreData { classes })
        }
        DefectKind::UnreliableTrainingData => {
            // The contaminated pair = the modal (true, predicted) pair of
            // the UTD-assigned cases. Mislabeled training samples carry
            // the *predicted* label and execute as the *true* class.
            //
            // Tie-break (pinned): when several pairs share the top count,
            // the lexicographically largest `(true, predicted)` pair wins.
            // The key `(n, pair)` is a total order, so the winner is
            // independent of `HashMap` iteration order — repair plans are
            // reproducible across runs, which the repair stage's artifact
            // cache (keyed by the plan) relies on.
            let mut pairs: HashMap<(usize, usize), usize> = HashMap::new();
            for case in &report.cases {
                if case.assigned == "UTD" {
                    *pairs.entry((case.true_label, case.predicted)).or_insert(0) += 1;
                }
            }
            let ((true_label, predicted), _) =
                pairs.into_iter().max_by_key(|&(pair, n)| (n, pair))?;
            Some(RepairPlan::CleanLabels {
                suspect_label: predicted,
                executes_as: true_label,
            })
        }
        DefectKind::StructureDefect => Some(RepairPlan::StrengthenStructure),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{CaseDiagnosis, DefectRatios};

    fn report_with(ratios: [f32; 3], cases: Vec<CaseDiagnosis>) -> DefectReport {
        DefectReport {
            ratios: DefectRatios::new(ratios),
            num_cases: cases.len(),
            probe_labels: vec!["l".into()],
            probe_accuracies: vec![0.9],
            model_health: 0.9,
            cases,
            subject: "test".into(),
        }
    }

    fn case(assigned: &str, t: usize, p: usize) -> CaseDiagnosis {
        CaseDiagnosis {
            case_index: 0,
            true_label: t,
            predicted: p,
            assigned: assigned.into(),
            score_distribution: [1.0 / 3.0; 3],
        }
    }

    #[test]
    fn itd_report_recommends_data_collection() {
        let cases = vec![
            case("ITD", 0, 7),
            case("ITD", 0, 8),
            case("ITD", 1, 7),
            case("UTD", 4, 5),
        ];
        let plan = recommend(&report_with([0.75, 0.25, 0.0], cases)).unwrap();
        match plan {
            RepairPlan::CollectMoreData { classes } => {
                assert_eq!(classes[0], 0);
                assert!(classes.contains(&1));
            }
            other => panic!("unexpected plan {other}"),
        }
    }

    #[test]
    fn utd_report_names_the_pair() {
        let cases = vec![case("UTD", 3, 5), case("UTD", 3, 5), case("UTD", 2, 6)];
        let plan = recommend(&report_with([0.0, 1.0, 0.0], cases)).unwrap();
        assert_eq!(
            plan,
            RepairPlan::CleanLabels {
                suspect_label: 5,
                executes_as: 3
            }
        );
    }

    #[test]
    fn utd_tie_break_is_pinned_and_order_independent() {
        // Four pairs, each seen once: the tie must resolve to the
        // lexicographically largest (true, predicted) pair — (7, 2) —
        // no matter how the counting map iterates.
        let tied = [(1, 9), (7, 2), (3, 8), (0, 4)];
        let expect = RepairPlan::CleanLabels {
            suspect_label: 2,
            executes_as: 7,
        };
        // Feed the cases in several orders; the plan must never change.
        for rotation in 0..tied.len() {
            let mut cases: Vec<CaseDiagnosis> = Vec::new();
            for i in 0..tied.len() {
                let (t, p) = tied[(i + rotation) % tied.len()];
                cases.push(case("UTD", t, p));
            }
            let plan = recommend(&report_with([0.0, 1.0, 0.0], cases)).unwrap();
            assert_eq!(plan, expect, "rotation {rotation} changed the tie-break");
        }
        // A strictly larger count still beats the largest pair.
        let cases = vec![case("UTD", 1, 9), case("UTD", 1, 9), case("UTD", 7, 2)];
        assert_eq!(
            recommend(&report_with([0.0, 1.0, 0.0], cases)).unwrap(),
            RepairPlan::CleanLabels {
                suspect_label: 9,
                executes_as: 1
            }
        );
    }

    #[test]
    fn sd_report_recommends_structure() {
        let plan = recommend(&report_with([0.1, 0.1, 0.8], vec![case("SD", 1, 2)])).unwrap();
        assert_eq!(plan, RepairPlan::StrengthenStructure);
    }

    #[test]
    fn empty_report_has_no_plan() {
        assert!(recommend(&report_with([0.0, 0.0, 0.0], vec![])).is_none());
        // Dominant ITD but no ITD-assigned cases.
        assert!(recommend(&report_with([1.0, 0.0, 0.0], vec![case("UTD", 1, 2)])).is_none());
    }

    #[test]
    fn plans_display() {
        let p = RepairPlan::CleanLabels {
            suspect_label: 5,
            executes_as: 3,
        };
        assert!(p.to_string().contains("labeled 5"));
        assert!(RepairPlan::StrengthenStructure
            .to_string()
            .contains("strengthen"));
    }
}
