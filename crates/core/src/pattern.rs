//! Per-class execution patterns.
//!
//! After instrumentation, DeepMorph learns "the execution pattern of the
//! training cases for each target class" (paper Fig. 1): at every probed
//! layer, the mean probe distribution of the class's training cases, plus
//! the dispersion statistics the defect classifier normalizes against.

use deepmorph_tensor::stats;

use crate::footprint::FootprintSet;
use crate::{DeepMorphError, Result};

/// Class execution patterns plus model-level baseline statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassPatterns {
    /// `mean[l][c]` = mean probe distribution of class `c` at layer `l`.
    mean: Vec<Vec<Vec<f32>>>,
    /// Per-layer mean alignment (JS similarity) of training footprints to
    /// their own class pattern — the within-class dispersion baseline.
    own_alignment: Vec<f32>,
    /// Per-layer mean alignment margin (best minus second-best class) of
    /// training footprints — the separability baseline.
    own_margin: Vec<f32>,
    /// Per-layer probe accuracy on the training set.
    probe_accuracy: Vec<f32>,
    /// Per-layer mean pairwise JS divergence between class patterns.
    separation: Vec<f32>,
    /// Training-set class histogram (post-injection labels).
    class_counts: Vec<usize>,
    /// Histogram of the final probe's predicted classes over the training
    /// set. Unlike `class_counts`, this reflects what data *actually
    /// executes* as each class: mislabeled samples still flow like their
    /// true class, so UTD leaves these counts balanced while ITD leaves a
    /// hole.
    probe_pred_counts: Vec<usize>,
    /// `disagreement[label][probe_class]`: fraction of training samples
    /// carrying `label` that the final probe assigns to `probe_class`.
    /// Off-diagonal mass concentrated in one cell is the fingerprint of
    /// label noise (UTD): mislabeled samples keep following their true
    /// class's execution pattern.
    disagreement: Vec<Vec<f32>>,
    num_classes: usize,
}

impl ClassPatterns {
    /// Learns patterns from training-set footprints.
    ///
    /// # Errors
    ///
    /// Returns [`DeepMorphError::Instrumentation`] for empty inputs or
    /// label/footprint count mismatches.
    pub fn learn(
        train_footprints: &FootprintSet,
        train_labels: &[usize],
        probe_accuracy: Vec<f32>,
    ) -> Result<Self> {
        let n = train_footprints.len();
        let depth = train_footprints.depth();
        let k = train_footprints.num_classes();
        if n == 0 || depth == 0 {
            return Err(DeepMorphError::Instrumentation {
                reason: "cannot learn patterns from empty footprints".into(),
            });
        }
        if train_labels.len() != n {
            return Err(DeepMorphError::Instrumentation {
                reason: format!("{} labels for {n} footprints", train_labels.len()),
            });
        }
        if probe_accuracy.len() != depth {
            return Err(DeepMorphError::Instrumentation {
                reason: format!(
                    "{} probe accuracies for {depth} probe layers",
                    probe_accuracy.len()
                ),
            });
        }

        // Mean distribution per (layer, class).
        let mut mean = vec![vec![vec![0.0f32; k]; k.max(1)]; depth];
        let mut counts = vec![0usize; k];
        for (fp, &label) in train_footprints.iter().zip(train_labels) {
            counts[label] += 1;
            for (l, mean_l) in mean.iter_mut().enumerate() {
                for (m, &p) in mean_l[label].iter_mut().zip(fp.layer(l)) {
                    *m += p;
                }
            }
        }
        for mean_l in &mut mean {
            for (c, mean_lc) in mean_l.iter_mut().enumerate() {
                if counts[c] > 0 {
                    let inv = 1.0 / counts[c] as f32;
                    for m in mean_lc {
                        *m *= inv;
                    }
                } else {
                    // A class absent from training (extreme ITD): uniform
                    // pattern, which no footprint aligns with strongly.
                    for m in mean_lc {
                        *m = 1.0 / k as f32;
                    }
                }
            }
        }

        // Baselines: own-class alignment and margins per layer.
        let mut own_alignment = vec![0.0f32; depth];
        let mut own_margin = vec![0.0f32; depth];
        for (fp, &label) in train_footprints.iter().zip(train_labels) {
            for l in 0..depth {
                let aligns: Vec<f32> = (0..k)
                    .map(|c| stats::js_similarity(fp.layer(l), &mean[l][c]))
                    .collect();
                own_alignment[l] += aligns[label];
                let (best, second) = stats::top2(&aligns);
                own_margin[l] += (best - second).max(0.0);
            }
        }
        for l in 0..depth {
            own_alignment[l] /= n as f32;
            own_margin[l] /= n as f32;
        }

        // Label/footprint disagreement on the training set (final probe).
        let mut class_counts = vec![0usize; k];
        let mut probe_pred_counts = vec![0usize; k];
        let mut disagreement = vec![vec![0.0f32; k]; k];
        for (fp, &label) in train_footprints.iter().zip(train_labels) {
            class_counts[label] += 1;
            let probe_class = stats::argmax(fp.last());
            probe_pred_counts[probe_class] += 1;
            disagreement[label][probe_class] += 1.0;
        }
        for (label, row) in disagreement.iter_mut().enumerate() {
            let total = class_counts[label].max(1) as f32;
            for v in row.iter_mut() {
                *v /= total;
            }
        }

        // Inter-class pattern separation per layer.
        let mut separation = vec![0.0f32; depth];
        for l in 0..depth {
            let mut total = 0.0;
            let mut pairs = 0;
            for a in 0..k {
                for b in (a + 1)..k {
                    total += stats::js_divergence(&mean[l][a], &mean[l][b]);
                    pairs += 1;
                }
            }
            separation[l] = if pairs > 0 { total / pairs as f32 } else { 0.0 };
        }

        Ok(ClassPatterns {
            mean,
            own_alignment,
            own_margin,
            probe_accuracy,
            separation,
            class_counts,
            probe_pred_counts,
            disagreement,
            num_classes: k,
        })
    }

    /// Learns patterns from fit-split footprints, but derives the
    /// label-noise statistics (class counts, flow histogram, disagreement
    /// matrix) from a *held-out* split the probes were never fitted on.
    ///
    /// With enough training a backbone memorizes mislabeled samples, so
    /// probes fitted on the same data reproduce the wrong labels and the
    /// disagreement signal vanishes. Held-out mislabeled samples still
    /// execute like their true class, keeping the UTD fingerprint visible
    /// regardless of how long the backbone trained.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ClassPatterns::learn`], plus holdout/fit
    /// shape mismatches.
    pub fn learn_with_holdout(
        fit_footprints: &FootprintSet,
        fit_labels: &[usize],
        holdout_footprints: &FootprintSet,
        holdout_labels: &[usize],
        probe_accuracy: Vec<f32>,
    ) -> Result<Self> {
        let mut patterns = Self::learn(fit_footprints, fit_labels, probe_accuracy)?;
        if holdout_footprints.is_empty() {
            return Ok(patterns); // degenerate split: keep fit statistics
        }
        if holdout_footprints.depth() != patterns.depth()
            || holdout_footprints.num_classes() != patterns.num_classes
            || holdout_labels.len() != holdout_footprints.len()
        {
            return Err(DeepMorphError::Instrumentation {
                reason: "holdout footprints disagree with fit footprints".into(),
            });
        }
        let k = patterns.num_classes;
        let mut class_counts = vec![0usize; k];
        let mut probe_pred_counts = vec![0usize; k];
        let mut disagreement = vec![vec![0.0f32; k]; k];
        for (fp, &label) in holdout_footprints.iter().zip(holdout_labels) {
            class_counts[label] += 1;
            let probe_class = stats::argmax(fp.last());
            probe_pred_counts[probe_class] += 1;
            disagreement[label][probe_class] += 1.0;
        }
        for (label, row) in disagreement.iter_mut().enumerate() {
            let total = class_counts[label].max(1) as f32;
            for v in row.iter_mut() {
                *v /= total;
            }
        }
        patterns.class_counts = class_counts;
        patterns.probe_pred_counts = probe_pred_counts;
        patterns.disagreement = disagreement;
        Ok(patterns)
    }

    /// Number of probed layers.
    pub fn depth(&self) -> usize {
        self.mean.len()
    }

    /// Number of target classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The execution pattern of class `c` at layer `l`.
    pub fn pattern(&self, l: usize, c: usize) -> &[f32] {
        &self.mean[l][c]
    }

    /// Mean training alignment to the own-class pattern at layer `l`.
    pub fn own_alignment(&self, l: usize) -> f32 {
        self.own_alignment[l]
    }

    /// Mean own-alignment across all layers.
    pub fn own_alignment_mean(&self) -> f32 {
        stats::mean(&self.own_alignment)
    }

    /// Mean training alignment margin at layer `l`.
    pub fn own_margin(&self, l: usize) -> f32 {
        self.own_margin[l]
    }

    /// Mean margin over the early half of the network (layers `0..⌈d/2⌉`).
    pub fn early_margin_baseline(&self) -> f32 {
        let half = self.depth().div_ceil(2);
        stats::mean(&self.own_margin[..half])
    }

    /// Probe training accuracy at layer `l`.
    pub fn probe_accuracy(&self, l: usize) -> f32 {
        self.probe_accuracy[l]
    }

    /// Inter-class pattern separation (mean pairwise JS divergence) at
    /// layer `l`.
    pub fn separation(&self, l: usize) -> f32 {
        self.separation[l]
    }

    /// Training-set sample count of class `c` (post-injection labels).
    pub fn class_count(&self, c: usize) -> usize {
        self.class_counts[c]
    }

    /// How starved class `c` is, measured on the *data flow* rather than
    /// the labels: `1 - probe_pred_count(c) / (n / k)`, clamped to
    /// `[0, 1]`.
    ///
    /// Counting probe-predicted classes instead of labels matters:
    /// mislabeled training samples (UTD) still *execute* like their true
    /// class, so the flow histogram stays balanced under UTD, while a
    /// class whose data ITD removed leaves a genuine hole nothing else
    /// fills.
    pub fn starvation(&self, c: usize) -> f32 {
        let n: usize = self.probe_pred_counts.iter().sum();
        let expected = n as f32 / self.num_classes.max(1) as f32;
        if expected <= 0.0 {
            return 0.0;
        }
        (1.0 - self.probe_pred_counts[c] as f32 / expected).clamp(0.0, 1.0)
    }

    /// Fraction of training samples labeled `label` whose final-probe
    /// argmax is `probe_class` — the contamination estimate used by the
    /// UTD signature. Off-diagonal values near the training error rate are
    /// noise; a concentrated off-diagonal cell indicates mislabeled data
    /// (samples labeled `label` that *execute* like `probe_class`).
    pub fn contamination(&self, label: usize, probe_class: usize) -> f32 {
        self.disagreement[label][probe_class]
    }

    /// Total off-diagonal disagreement mass (weighted by class frequency):
    /// the estimated label-noise rate of the training set.
    pub fn disagreement_rate(&self) -> f32 {
        let n: usize = self.class_counts.iter().sum();
        if n == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for (label, row) in self.disagreement.iter().enumerate() {
            for (probe_class, &v) in row.iter().enumerate() {
                if probe_class != label {
                    total += v * self.class_counts[label] as f32;
                }
            }
        }
        total / n as f32
    }

    /// How concentrated the training set's label/footprint disagreement is
    /// in a single `(label, probe_class)` pair, in `[0, 1]`.
    ///
    /// Label noise injected as "class a tagged as class b" (UTD) puts most
    /// off-diagonal disagreement mass in one cell; a weak model's probe
    /// errors (SD) spread over many cells; ITD's starved-class rows carry
    /// almost no mass because the rows are tiny. The value is the largest
    /// cell's share of all off-diagonal mass, gated by the overall noise
    /// rate (below ~2% disagreement there is nothing to concentrate).
    pub fn concentrated_label_noise(&self) -> f32 {
        let n: usize = self.class_counts.iter().sum();
        if n == 0 {
            return 0.0;
        }
        let mut total_mass = 0.0f32;
        let mut max_mass = 0.0f32;
        for (label, row) in self.disagreement.iter().enumerate() {
            let weight = self.class_counts[label] as f32;
            for (probe_class, &frac) in row.iter().enumerate() {
                if probe_class != label {
                    let mass = frac * weight;
                    total_mass += mass;
                    if mass > max_mass {
                        max_mass = mass;
                    }
                }
            }
        }
        if total_mass <= 0.0 {
            return 0.0;
        }
        let share = max_mass / total_mass;
        let rate = total_mass / n as f32;
        let gate = (rate / 0.02).clamp(0.0, 1.0);
        share * gate
    }

    /// Model health in `[0, 1]`: the final probe's training accuracy,
    /// rescaled so chance level maps to 0.
    ///
    /// A healthy trained backbone separates its *own training data* well at
    /// the last stages, whatever the test-time failure mode; a structurally
    /// defective one cannot. This is the classifier's main SD signal.
    pub fn health(&self) -> f32 {
        let last = *self
            .probe_accuracy
            .last()
            .expect("patterns have at least one layer");
        let chance = 1.0 / self.num_classes as f32;
        ((last - chance) / (1.0 - chance)).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::Footprint;

    /// Builds a footprint set where class c's distribution ramps from
    /// uniform to a peak at c.
    fn crisp_footprints(n_per_class: usize, k: usize, depth: usize) -> (FootprintSet, Vec<usize>) {
        let mut fps = Vec::new();
        let mut labels = Vec::new();
        for c in 0..k {
            for s in 0..n_per_class {
                let mut layers = Vec::new();
                for l in 0..depth {
                    let sharp = (l + 1) as f32 / depth as f32;
                    let mut dist = vec![(1.0 - sharp) / k as f32; k];
                    dist[c] += sharp;
                    // Small per-sample perturbation.
                    let eps = 0.01 * (s % 3) as f32;
                    dist[(c + 1) % k] += eps;
                    let total: f32 = dist.iter().sum();
                    for d in &mut dist {
                        *d /= total;
                    }
                    layers.push(dist);
                }
                fps.push(Footprint::new(layers));
                labels.push(c);
            }
        }
        (
            FootprintSet::new(fps, (0..depth).map(|l| format!("l{l}")).collect(), k),
            labels,
        )
    }

    #[test]
    fn learn_recovers_class_means() {
        let (fps, labels) = crisp_footprints(5, 3, 4);
        let patterns = ClassPatterns::learn(&fps, &labels, vec![0.4, 0.6, 0.8, 0.95]).unwrap();
        assert_eq!(patterns.depth(), 4);
        // Final layer pattern of class 0 peaks at class 0.
        let p = patterns.pattern(3, 0);
        assert_eq!(stats::argmax(p), 0);
        assert!(p[0] > 0.8);
    }

    #[test]
    fn separation_grows_with_depth() {
        let (fps, labels) = crisp_footprints(5, 3, 4);
        let patterns = ClassPatterns::learn(&fps, &labels, vec![0.4, 0.6, 0.8, 0.95]).unwrap();
        assert!(patterns.separation(3) > patterns.separation(0));
    }

    #[test]
    fn health_rescales_chance_to_zero() {
        let (fps, labels) = crisp_footprints(3, 10, 2);
        let chance = ClassPatterns::learn(&fps, &labels, vec![0.1, 0.1]).unwrap();
        assert!(chance.health() < 1e-6);
        let perfect = ClassPatterns::learn(&fps, &labels, vec![0.1, 1.0]).unwrap();
        assert!((perfect.health() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn missing_class_gets_uniform_pattern() {
        let (fps, mut labels) = crisp_footprints(4, 3, 2);
        // Relabel class 2 as class 0: class 2 has no training cases.
        for l in &mut labels {
            if *l == 2 {
                *l = 0;
            }
        }
        let patterns = ClassPatterns::learn(&fps, &labels, vec![0.5, 0.9]).unwrap();
        let p = patterns.pattern(1, 2);
        assert!(p.iter().all(|&v| (v - 1.0 / 3.0).abs() < 1e-6));
    }

    #[test]
    fn learn_validates_inputs() {
        let (fps, labels) = crisp_footprints(2, 2, 2);
        assert!(ClassPatterns::learn(&fps, &labels[..1], vec![0.5, 0.5]).is_err());
        assert!(ClassPatterns::learn(&fps, &labels, vec![0.5]).is_err());
        let empty = FootprintSet::new(vec![], vec![], 2);
        assert!(ClassPatterns::learn(&empty, &[], vec![]).is_err());
    }

    #[test]
    fn starvation_uses_flow_not_labels() {
        // 3 classes; class 2's samples all *execute* like class 0 (their
        // footprints peak at 0), as if they were mislabeled class-0 data.
        let k = 3;
        let mut fps = Vec::new();
        let mut labels = Vec::new();
        for c in 0..k {
            for _ in 0..10 {
                let exec_as = if c == 2 { 0 } else { c };
                let mut dist = vec![0.05; k];
                dist[exec_as] = 0.9;
                fps.push(Footprint::new(vec![dist.clone(), dist]));
                labels.push(c);
            }
        }
        let set = FootprintSet::new(fps, vec!["a".into(), "b".into()], k);
        let p = ClassPatterns::learn(&set, &labels, vec![0.6, 0.9]).unwrap();
        // Labels are balanced, but nothing *flows* as class 2.
        assert_eq!(p.class_count(2), 10);
        assert!(p.starvation(2) > 0.9, "starvation {}", p.starvation(2));
        // Class 0 receives double flow: no starvation.
        assert_eq!(p.starvation(0), 0.0);
    }

    #[test]
    fn contamination_detects_mislabeled_pair() {
        // Class 1's labeled samples: 40% execute like class 0.
        let k = 3;
        let mut fps = Vec::new();
        let mut labels = Vec::new();
        for c in 0..k {
            for s in 0..10 {
                let exec_as = if c == 1 && s < 4 { 0 } else { c };
                let mut dist = vec![0.05; k];
                dist[exec_as] = 0.9;
                fps.push(Footprint::new(vec![dist]));
                labels.push(c);
            }
        }
        let set = FootprintSet::new(fps, vec!["a".into()], k);
        let p = ClassPatterns::learn(&set, &labels, vec![0.8]).unwrap();
        assert!((p.contamination(1, 0) - 0.4).abs() < 1e-6);
        assert_eq!(p.contamination(0, 1), 0.0);
        assert!((p.disagreement_rate() - 4.0 / 30.0).abs() < 1e-6);
        // Concentrated: all off-diagonal mass sits in one cell.
        assert!(p.concentrated_label_noise() > 0.9);
    }

    #[test]
    fn diffuse_noise_is_not_concentrated() {
        // Every class leaks equally to every other class.
        let k = 4;
        let mut fps = Vec::new();
        let mut labels = Vec::new();
        for c in 0..k {
            for s in 0..12 {
                let exec_as = if s < 3 { (c + 1 + s % 3) % k } else { c };
                let mut dist = vec![0.02; k];
                dist[exec_as] = 0.94;
                fps.push(Footprint::new(vec![dist]));
                labels.push(c);
            }
        }
        let set = FootprintSet::new(fps, vec!["a".into()], k);
        let p = ClassPatterns::learn(&set, &labels, vec![0.7]).unwrap();
        // Mass spreads over 12 cells: share per cell ≈ 1/12.
        assert!(
            p.concentrated_label_noise() < 0.2,
            "noise {}",
            p.concentrated_label_noise()
        );
    }

    #[test]
    fn holdout_statistics_override_fit_statistics() {
        let (fit_fps, fit_labels) = crisp_footprints(6, 3, 2);
        // Holdout where class 0 executes like class 1.
        let mut hold_fps = Vec::new();
        let mut hold_labels = Vec::new();
        for c in 0..3usize {
            for _ in 0..5 {
                let exec_as = if c == 0 { 1 } else { c };
                let mut dist = vec![0.05; 3];
                dist[exec_as] = 0.9;
                hold_fps.push(Footprint::new(vec![dist.clone(), dist]));
                hold_labels.push(c);
            }
        }
        let holdout = FootprintSet::new(hold_fps, vec!["a".into(), "b".into()], 3);
        let p = ClassPatterns::learn_with_holdout(
            &fit_fps,
            &fit_labels,
            &holdout,
            &hold_labels,
            vec![0.5, 0.9],
        )
        .unwrap();
        assert!((p.contamination(0, 1) - 1.0).abs() < 1e-6);
        // Patterns still come from the fit split (class 0 peaks at 0).
        assert_eq!(stats::argmax(p.pattern(1, 0)), 0);
    }

    #[test]
    fn empty_holdout_falls_back_to_fit() {
        let (fit_fps, fit_labels) = crisp_footprints(4, 3, 2);
        let empty = FootprintSet::new(vec![], vec!["a".into(), "b".into()], 3);
        let p =
            ClassPatterns::learn_with_holdout(&fit_fps, &fit_labels, &empty, &[], vec![0.5, 0.9])
                .unwrap();
        assert_eq!(p.class_count(0), 4);
    }

    #[test]
    fn mismatched_holdout_is_rejected() {
        let (fit_fps, fit_labels) = crisp_footprints(4, 3, 2);
        let (bad_depth, bad_labels) = crisp_footprints(2, 3, 3);
        assert!(ClassPatterns::learn_with_holdout(
            &fit_fps,
            &fit_labels,
            &bad_depth,
            &bad_labels,
            vec![0.5, 0.9],
        )
        .is_err());
    }

    #[test]
    fn own_alignment_is_high_for_crisp_data() {
        let (fps, labels) = crisp_footprints(5, 3, 4);
        let patterns = ClassPatterns::learn(&fps, &labels, vec![0.5; 4]).unwrap();
        assert!(patterns.own_alignment(3) > 0.9);
        assert!(patterns.own_alignment_mean() > 0.8);
        assert!(patterns.early_margin_baseline() >= 0.0);
    }
}
