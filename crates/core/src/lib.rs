//! **DeepMorph** — diagnosing deep-model defects from internal data-flow
//! footprints.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (*"Detecting Deep Neural Network Defects with Data Flow Analysis"*,
//! DSN 2021). Given a badly-performing classifier, its training set, and
//! the misclassified test inputs (the *faulty cases*), DeepMorph attributes
//! the bad performance to one of three root causes — Insufficient Training
//! Data (ITD), Unreliable Training Data (UTD), or a Structure Defect (SD) —
//! by analyzing how inputs flow through the hidden layers.
//!
//! The pipeline mirrors the paper's Figure 1:
//!
//! 1. [`instrument`] — build the *softmax-instrumented model*: one
//!    auxiliary softmax probe per hidden stage, trained on the training set
//!    with the backbone frozen.
//! 2. [`pattern`] — learn each target class's *execution pattern*: the
//!    per-layer mean probe distribution of its training cases.
//! 3. [`footprint`] — extract each faulty case's *data flow footprint*:
//!    its per-layer probe-distribution trajectory.
//! 4. [`specifics`] + [`classify`] — compare footprints to patterns layer
//!    by layer, score the three defect signatures, and aggregate into the
//!    per-defect ratios of [`report::DefectReport`].
//!
//! [`pipeline::DeepMorph`] wires the steps together; [`scenario`] adds the
//! end-to-end experiment driver (generate data → inject defect → train →
//! diagnose) used by the examples and the Table I harness.
//!
//! # Quickstart
//!
//! ```no_run
//! use deepmorph::prelude::*;
//!
//! # fn main() -> Result<(), DeepMorphError> {
//! let scenario = Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
//!     .seed(7)
//!     .inject(DefectSpec::insufficient_training_data(vec![0, 1, 2], 0.9))
//!     .build()?;
//! let outcome = scenario.run()?;
//! println!("{}", outcome.report);
//! assert_eq!(outcome.report.dominant(), Some(DefectKind::InsufficientTrainingData));
//! # Ok(())
//! # }
//! ```

pub mod artifact;
pub mod classify;
mod error;
pub mod explain;
pub mod footprint;
pub mod instrument;
pub mod pattern;
pub mod pipeline;
pub mod repair;
pub mod report;
pub mod scenario;
pub mod specifics;
pub mod stage;
pub mod sweep;

pub use error::DeepMorphError;

/// Result alias used across this crate.
pub type Result<T> = std::result::Result<T, DeepMorphError>;

/// Convenience re-exports (includes the types from the substrate crates
/// that appear in this crate's public API).
pub mod prelude {
    pub use crate::artifact::{content_fingerprint, ArtifactStore, Fingerprint, StoreStats};
    pub use crate::classify::{AlignmentMetric, ClassifierConfig, DefectClassifier};
    pub use crate::explain::{explain_case, explain_report};
    pub use crate::footprint::{Footprint, FootprintSet};
    pub use crate::instrument::{InstrumentedModel, ProbeTrainingConfig, TrainedProbe};
    pub use crate::pattern::ClassPatterns;
    pub use crate::pipeline::{DeepMorph, DeepMorphConfig, DiagnosisSession, FaultyCases};
    pub use crate::repair::{recommend, RepairPlan};
    pub use crate::report::{CaseDiagnosis, DefectRatios, DefectReport};
    pub use crate::scenario::{RepairOutcome, Scenario, ScenarioBuilder, ScenarioOutcome};
    pub use crate::specifics::FootprintSpecifics;
    pub use crate::stage::{
        FootprintArtifact, InstrumentedArtifact, RepairedModelArtifact, StagedEngine,
        TrainedModelArtifact,
    };
    pub use crate::sweep::{CellReport, ExperimentPlan, SweepReport, SweepRunner};
    pub use crate::{DeepMorphError, Result as DeepMorphResult};
    pub use deepmorph_data::prelude::*;
    pub use deepmorph_defects::prelude::*;
    pub use deepmorph_models::prelude::*;
    pub use deepmorph_nn::prelude::*;
    pub use deepmorph_tensor::prelude::*;
}
