//! The staged scenario engine.
//!
//! [`Scenario::run`] used to be a monolithic in-process pass; this module
//! splits it into four explicit stages with typed, serializable artifacts:
//!
//! 1. **Train** → [`TrainedModelArtifact`]: inject the defect, build and
//!    train the backbone, evaluate it, and collect the (capped) faulty
//!    cases from the clean test set.
//! 2. **Instrument** → [`InstrumentedArtifact`]: fit one auxiliary softmax
//!    probe per stage on the fit split of the training set.
//! 3. **Footprints** → [`FootprintArtifact`]: extract the data-flow
//!    footprints of the fit split, the holdout split, and the faulty
//!    cases.
//! 4. **Report** → [`DefectReport`]: learn class patterns, score the
//!    defect signatures, and assemble the diagnosis.
//!
//! Each stage is keyed by a content [`Fingerprint`] of everything that
//! influences it (scenario inputs plus the upstream stage's fingerprint)
//! and persisted through an [`ArtifactStore`]. A sweep that varies only
//! the defect severity therefore recomputes only the stages whose
//! fingerprints changed — and the severity-invariant *base* stages (e.g.
//! the healthy twin every severity point shares) are trained once and
//! loaded everywhere else. Cached and fresh paths are bitwise identical:
//! artifacts serialize `f32` payloads exactly, and models are rebuilt from
//! their spec before the stored state is imported.
//!
//! Datasets are *not* artifacts: the synthetic generators are
//! deterministic and cheap, so stages regenerate data from the seed
//! instead of storing megabytes of images.

use deepmorph_data::Dataset;
use deepmorph_defects::DefectSpec;
use deepmorph_models::{decode_model, encode_model, ModelHandle, ProbePoint};
use deepmorph_nn::train::{evaluate_accuracy, OptimizerKind};
use deepmorph_tensor::io::{
    open_container, read_tensor, seal_container, write_tensor, ByteReader, ByteWriter, CodecError,
    CodecResult,
};
use deepmorph_tensor::Tensor;

use crate::artifact::{content_fingerprint, ArtifactStore, Fingerprint, Fingerprinter};
use crate::classify::{AlignmentMetric, ClassifierConfig, DefectClassifier};
use crate::footprint::{Footprint, FootprintSet};
use crate::instrument::{InstrumentedModel, ProbeTrainingConfig, TrainedProbe};
use crate::pattern::ClassPatterns;
use crate::pipeline::FaultyCases;
use crate::repair::{recommend, RepairPlan};
use crate::report::{CaseDiagnosis, DefectRatios, DefectReport};
use crate::scenario::{RepairOutcome, Scenario, ScenarioOutcome};
use crate::specifics::FootprintSpecifics;
use crate::{DeepMorphError, Result};

const TRAINED_MAGIC: [u8; 4] = *b"DMS1";
const INSTRUMENTED_MAGIC: [u8; 4] = *b"DMS2";
const FOOTPRINT_MAGIC: [u8; 4] = *b"DMS3";
const REPORT_MAGIC: [u8; 4] = *b"DMS4";
const REPAIRED_MAGIC: [u8; 4] = *b"DMS5";

// ---------------------------------------------------------------------
// Stage 1: trained model
// ---------------------------------------------------------------------

/// Output of the training stage: the trained backbone (as serialized
/// spec + state), its accuracies, and the capped faulty cases.
#[derive(Debug, Clone)]
pub struct TrainedModelArtifact {
    /// The model as a `deepmorph-models` container (spec + topology +
    /// state dict).
    model_bytes: Vec<u8>,
    /// Final accuracy on the (injected) training set.
    pub train_accuracy: f32,
    /// Accuracy on the clean test set.
    pub test_accuracy: f32,
    /// Misclassified test cases, capped at the scenario's
    /// `max_faulty_cases`.
    pub faulty: FaultyCases,
    /// Total faulty count before capping.
    pub total_faulty: usize,
}

impl TrainedModelArtifact {
    /// Rebuilds the live model: spec → architecture, then exact state
    /// import. The result's eval-mode behavior is bitwise identical to
    /// the model that was trained.
    ///
    /// # Errors
    ///
    /// Returns [`DeepMorphError::Artifact`] if the stored bytes no longer
    /// decode against the current architecture code.
    pub fn instantiate(&self) -> Result<ModelHandle> {
        decode_model(&self.model_bytes).map_err(|e| DeepMorphError::Artifact {
            reason: format!("trained-model artifact: {e}"),
        })
    }

    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.model_bytes.len() as u64);
        w.put_bytes(&self.model_bytes);
        w.put_f32(self.train_accuracy);
        w.put_f32(self.test_accuracy);
        write_tensor(&mut w, &self.faulty.images);
        w.put_usizes(&self.faulty.true_labels);
        w.put_usizes(&self.faulty.predicted);
        w.put_u64(self.total_faulty as u64);
        seal_container(TRAINED_MAGIC, w.as_slice())
    }

    fn decode(bytes: &[u8]) -> CodecResult<Self> {
        let payload = open_container(TRAINED_MAGIC, bytes)?;
        let mut r = ByteReader::new(payload);
        let model_len = r.get_len("model bytes")?;
        let model_bytes = r.get_bytes(model_len, "model bytes")?.to_vec();
        let train_accuracy = r.get_f32("train accuracy")?;
        let test_accuracy = r.get_f32("test accuracy")?;
        let images = read_tensor(&mut r)?;
        let true_labels = r.get_usizes("faulty labels")?;
        let predicted = r.get_usizes("faulty predictions")?;
        let total_faulty = r.get_len("total faulty")?;
        if images.ndim() != 4
            || images.shape()[0] != true_labels.len()
            || true_labels.len() != predicted.len()
        {
            return Err(CodecError::Invalid {
                context: "faulty cases disagree on case count".into(),
            });
        }
        Ok(TrainedModelArtifact {
            model_bytes,
            train_accuracy,
            test_accuracy,
            faulty: FaultyCases {
                images,
                true_labels,
                predicted,
            },
            total_faulty,
        })
    }
}

// ---------------------------------------------------------------------
// Stage 2: instrumented model (probes)
// ---------------------------------------------------------------------

/// One serialized probe of an [`InstrumentedArtifact`].
#[derive(Debug, Clone)]
struct StoredProbe {
    node: u64,
    label: String,
    features: usize,
    spatial: bool,
    weight: Tensor,
    bias: Tensor,
    train_accuracy: f32,
}

/// Output of the instrumentation stage: the trained auxiliary softmax
/// probes (the backbone itself lives in the upstream
/// [`TrainedModelArtifact`]).
#[derive(Debug, Clone)]
pub struct InstrumentedArtifact {
    num_classes: usize,
    probes: Vec<StoredProbe>,
}

impl InstrumentedArtifact {
    fn from_model(inst: &InstrumentedModel) -> Self {
        InstrumentedArtifact {
            num_classes: inst.num_classes(),
            probes: inst
                .probes()
                .iter()
                .map(|p| StoredProbe {
                    node: p.point().node.index() as u64,
                    label: p.point().label.clone(),
                    features: p.point().features,
                    spatial: p.point().spatial,
                    weight: p.weight().clone(),
                    bias: p.bias().clone(),
                    train_accuracy: p.train_accuracy,
                })
                .collect(),
        }
    }

    /// Number of probes.
    pub fn probe_count(&self) -> usize {
        self.probes.len()
    }

    /// Per-probe training accuracies, input → output order.
    pub fn probe_accuracies(&self) -> Vec<f32> {
        self.probes.iter().map(|p| p.train_accuracy).collect()
    }

    /// Reattaches the stored probes to a live backbone, reproducing the
    /// original [`InstrumentedModel`] exactly.
    ///
    /// # Errors
    ///
    /// Returns [`DeepMorphError::Instrumentation`] if the probes disagree
    /// with the model's probe points.
    pub fn instantiate(&self, model: ModelHandle) -> Result<InstrumentedModel> {
        if self.probes.len() != model.probes.len() {
            return Err(DeepMorphError::Instrumentation {
                reason: format!(
                    "{} stored probes for a model exposing {}",
                    self.probes.len(),
                    model.probes.len()
                ),
            });
        }
        let probes: Vec<TrainedProbe> = self
            .probes
            .iter()
            .zip(&model.probes)
            .map(|(stored, point)| {
                if stored.node != point.node.index() as u64 || stored.label != point.label {
                    return Err(DeepMorphError::Instrumentation {
                        reason: format!(
                            "stored probe `{}`@{} disagrees with model point `{}`@{}",
                            stored.label,
                            stored.node,
                            point.label,
                            point.node.index()
                        ),
                    });
                }
                TrainedProbe::from_parts(
                    ProbePoint {
                        node: point.node,
                        label: stored.label.clone(),
                        features: stored.features,
                        spatial: stored.spatial,
                    },
                    stored.weight.clone(),
                    stored.bias.clone(),
                    stored.train_accuracy,
                )
            })
            .collect::<Result<_>>()?;
        InstrumentedModel::from_parts(model, probes, self.num_classes)
    }

    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.num_classes as u64);
        w.put_u64(self.probes.len() as u64);
        for p in &self.probes {
            w.put_u64(p.node);
            w.put_str(&p.label);
            w.put_u64(p.features as u64);
            w.put_u8(u8::from(p.spatial));
            write_tensor(&mut w, &p.weight);
            write_tensor(&mut w, &p.bias);
            w.put_f32(p.train_accuracy);
        }
        seal_container(INSTRUMENTED_MAGIC, w.as_slice())
    }

    fn decode(bytes: &[u8]) -> CodecResult<Self> {
        let payload = open_container(INSTRUMENTED_MAGIC, bytes)?;
        let mut r = ByteReader::new(payload);
        let num_classes = r.get_len("num classes")?;
        let n = r.get_len("probe count")?;
        let mut probes = Vec::with_capacity(n.min(64));
        for _ in 0..n {
            probes.push(StoredProbe {
                node: r.get_u64("probe node")?,
                label: r.get_str("probe label")?,
                features: r.get_len("probe features")?,
                spatial: r.get_u8("probe spatial")? != 0,
                weight: read_tensor(&mut r)?,
                bias: read_tensor(&mut r)?,
                train_accuracy: r.get_f32("probe accuracy")?,
            });
        }
        Ok(InstrumentedArtifact {
            num_classes,
            probes,
        })
    }
}

// ---------------------------------------------------------------------
// Stage 3: footprints
// ---------------------------------------------------------------------

/// Output of the footprint stage: per-case probe-distribution
/// trajectories for the fit split, the holdout split (if used), and the
/// faulty cases.
#[derive(Debug, Clone)]
pub struct FootprintArtifact {
    /// Footprints of the fit split (patterns are learned from these).
    pub fit: FootprintSet,
    /// Footprints of the held-out split (label-noise statistics), when
    /// the training set was large enough to split.
    pub holdout: Option<FootprintSet>,
    /// Footprints of the (capped) faulty cases.
    pub faulty: FootprintSet,
}

fn write_footprint_set(w: &mut ByteWriter, set: &FootprintSet) {
    w.put_u64(set.num_classes() as u64);
    w.put_u64(set.probe_labels().len() as u64);
    for label in set.probe_labels() {
        w.put_str(label);
    }
    w.put_u64(set.len() as u64);
    for fp in set.iter() {
        for l in 0..fp.depth() {
            for &v in fp.layer(l) {
                w.put_f32(v);
            }
        }
    }
}

fn read_footprint_set(r: &mut ByteReader<'_>) -> CodecResult<FootprintSet> {
    let num_classes = r.get_len("footprint classes")?;
    let depth = r.get_len("footprint depth")?;
    let mut labels = Vec::with_capacity(depth.min(64));
    for _ in 0..depth {
        labels.push(r.get_str("footprint label")?);
    }
    let n = r.get_len("footprint count")?;
    if r.remaining()
        < n.saturating_mul(depth)
            .saturating_mul(num_classes)
            .saturating_mul(4)
    {
        return Err(CodecError::Truncated {
            context: "footprint data",
        });
    }
    let mut footprints = Vec::with_capacity(n);
    for _ in 0..n {
        let mut layers = Vec::with_capacity(depth);
        for _ in 0..depth {
            let mut dist = Vec::with_capacity(num_classes);
            for _ in 0..num_classes {
                dist.push(r.get_f32("footprint data")?);
            }
            layers.push(dist);
        }
        footprints.push(Footprint::new(layers));
    }
    Ok(FootprintSet::new(footprints, labels, num_classes))
}

impl FootprintArtifact {
    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        write_footprint_set(&mut w, &self.fit);
        w.put_u8(u8::from(self.holdout.is_some()));
        if let Some(holdout) = &self.holdout {
            write_footprint_set(&mut w, holdout);
        }
        write_footprint_set(&mut w, &self.faulty);
        seal_container(FOOTPRINT_MAGIC, w.as_slice())
    }

    fn decode(bytes: &[u8]) -> CodecResult<Self> {
        let payload = open_container(FOOTPRINT_MAGIC, bytes)?;
        let mut r = ByteReader::new(payload);
        let fit = read_footprint_set(&mut r)?;
        let holdout = if r.get_u8("holdout flag")? != 0 {
            Some(read_footprint_set(&mut r)?)
        } else {
            None
        };
        let faulty = read_footprint_set(&mut r)?;
        Ok(FootprintArtifact {
            fit,
            holdout,
            faulty,
        })
    }
}

// ---------------------------------------------------------------------
// Stage 5 (on demand): repaired model
// ---------------------------------------------------------------------

/// Output of executing a [`RepairPlan`]: the retrained model and how it
/// fared on the clean test set. Keyed by the scenario, the *content
/// fingerprint of the model being repaired*, and the plan — so repairing
/// the same model the same way twice retrains nothing, while a repaired
/// (hence different) model never aliases its ancestor's cache entry.
#[derive(Debug, Clone)]
pub struct RepairedModelArtifact {
    /// The repaired model as a `deepmorph-models` container.
    model_bytes: Vec<u8>,
    /// Clean-test accuracy of the repaired model.
    pub accuracy_after: f32,
    /// Training-set size after the repair.
    pub repaired_train_size: usize,
}

impl RepairedModelArtifact {
    /// Rebuilds the live repaired model (spec → architecture, exact state
    /// import; eval behavior is bitwise identical to the retrained model).
    ///
    /// # Errors
    ///
    /// Returns [`DeepMorphError::Artifact`] if the stored bytes no longer
    /// decode against the current architecture code.
    pub fn instantiate(&self) -> Result<ModelHandle> {
        decode_model(&self.model_bytes).map_err(|e| DeepMorphError::Artifact {
            reason: format!("repaired-model artifact: {e}"),
        })
    }

    fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.model_bytes.len() as u64);
        w.put_bytes(&self.model_bytes);
        w.put_f32(self.accuracy_after);
        w.put_u64(self.repaired_train_size as u64);
        seal_container(REPAIRED_MAGIC, w.as_slice())
    }

    fn decode(bytes: &[u8]) -> CodecResult<Self> {
        let payload = open_container(REPAIRED_MAGIC, bytes)?;
        let mut r = ByteReader::new(payload);
        let model_len = r.get_len("repaired model bytes")?;
        let model_bytes = r.get_bytes(model_len, "repaired model bytes")?.to_vec();
        let accuracy_after = r.get_f32("repaired accuracy")?;
        let repaired_train_size = r.get_len("repaired train size")?;
        Ok(RepairedModelArtifact {
            model_bytes,
            accuracy_after,
            repaired_train_size,
        })
    }
}

// ---------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------

/// Drives a [`Scenario`] through the four stages, loading every stage
/// whose fingerprint is already in the [`ArtifactStore`] and computing
/// (then persisting) the rest.
#[derive(Debug)]
pub struct StagedEngine {
    store: ArtifactStore,
}

impl StagedEngine {
    /// An engine over the given store.
    pub fn new(store: ArtifactStore) -> Self {
        StagedEngine { store }
    }

    /// An engine with a disabled store: every stage is computed fresh.
    /// This is what [`Scenario::run`] uses.
    pub fn ephemeral() -> Self {
        StagedEngine::new(ArtifactStore::disabled())
    }

    /// The underlying artifact store (hit/miss counters live here).
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    // -- fingerprints --------------------------------------------------

    fn push_defect(fp: &mut Fingerprinter, defect: &DefectSpec) {
        match defect {
            DefectSpec::Healthy => fp.push_u64(0),
            DefectSpec::Itd { classes, fraction } => {
                fp.push_u64(1);
                fp.push_usize(classes.len());
                for &c in classes {
                    fp.push_usize(c);
                }
                fp.push_f32(*fraction);
            }
            DefectSpec::Utd {
                source_class,
                target_class,
                fraction,
            } => {
                fp.push_u64(2);
                fp.push_usize(*source_class);
                fp.push_usize(*target_class);
                fp.push_f32(*fraction);
            }
            DefectSpec::Sd { removed_convs } => {
                fp.push_u64(3);
                fp.push_usize(*removed_convs);
            }
        }
    }

    fn push_probe_config(fp: &mut Fingerprinter, cfg: &ProbeTrainingConfig) {
        fp.push_usize(cfg.epochs);
        fp.push_usize(cfg.batch_size);
        fp.push_f32(cfg.learning_rate);
        fp.push_usize(cfg.max_samples);
        fp.push_u64(cfg.seed);
    }

    fn push_classifier_config(fp: &mut Fingerprinter, cfg: &ClassifierConfig) {
        fp.push_u64(match cfg.metric {
            AlignmentMetric::JensenShannon => 0,
            AlignmentMetric::Cosine => 1,
        });
        fp.push_bool(cfg.use_population);
        let w = &cfg.weights;
        for v in [
            w.itd_starvation,
            w.itd_entropy,
            w.itd_scatter,
            w.itd_novelty,
            w.utd_contamination,
            w.utd_noise_concentration,
            w.utd_confidence,
            w.utd_pair_concentration,
            w.sd_probe_disagreement,
            w.sd_unhealth,
            w.sd_early_flatness,
        ] {
            fp.push_f32(v);
        }
    }

    /// Fingerprint of the training stage: every input that shapes the
    /// trained model and its faulty-case set.
    pub fn trained_fingerprint(scenario: &Scenario) -> Fingerprint {
        let cfg = &scenario.cfg;
        let mut fp = Fingerprinter::new("deepmorph/stage/trained/v1");
        fp.push_str(cfg.family.name());
        fp.push_u64(match cfg.scale {
            deepmorph_models::ModelScale::Tiny => 0,
            deepmorph_models::ModelScale::Small => 1,
            deepmorph_models::ModelScale::Paper => 2,
        });
        fp.push_str(cfg.dataset.name());
        fp.push_u64(cfg.seed);
        fp.push_usize(cfg.train_per_class);
        fp.push_usize(cfg.test_per_class);
        let tc = &cfg.train_config;
        fp.push_usize(tc.epochs);
        fp.push_usize(tc.batch_size);
        fp.push_f32(tc.learning_rate);
        fp.push_f32(tc.lr_decay);
        match tc.optimizer {
            OptimizerKind::Sgd {
                momentum,
                weight_decay,
            } => {
                fp.push_u64(0);
                fp.push_f32(momentum);
                fp.push_f32(weight_decay);
            }
            OptimizerKind::Adam => fp.push_u64(1),
        }
        fp.push_bool(tc.shuffle);
        match tc.clip_grad_norm {
            Some(clip) => {
                fp.push_bool(true);
                fp.push_f32(clip);
            }
            None => fp.push_bool(false),
        }
        Self::push_defect(&mut fp, &cfg.defect);
        fp.push_usize(cfg.deepmorph.max_faulty_cases);
        fp.finish()
    }

    /// Fingerprint of the instrumentation stage.
    pub fn instrumented_fingerprint(scenario: &Scenario) -> Fingerprint {
        let mut fp = Fingerprinter::new("deepmorph/stage/instrumented/v1");
        fp.push_fingerprint(&Self::trained_fingerprint(scenario));
        Self::push_probe_config(&mut fp, &scenario.cfg.deepmorph.probe);
        fp.finish()
    }

    /// Fingerprint of the footprint stage.
    pub fn footprint_fingerprint(scenario: &Scenario) -> Fingerprint {
        let mut fp = Fingerprinter::new("deepmorph/stage/footprints/v1");
        fp.push_fingerprint(&Self::instrumented_fingerprint(scenario));
        fp.finish()
    }

    /// Fingerprint of the report stage — the full scenario identity.
    pub fn report_fingerprint(scenario: &Scenario) -> Fingerprint {
        let mut fp = Fingerprinter::new("deepmorph/stage/report/v1");
        fp.push_fingerprint(&Self::footprint_fingerprint(scenario));
        Self::push_classifier_config(&mut fp, &scenario.cfg.deepmorph.classifier);
        fp.finish()
    }

    fn push_plan(fp: &mut Fingerprinter, plan: &RepairPlan) {
        match plan {
            RepairPlan::CollectMoreData { classes } => {
                fp.push_u64(1);
                fp.push_usize(classes.len());
                for &c in classes {
                    fp.push_usize(c);
                }
            }
            RepairPlan::CleanLabels {
                suspect_label,
                executes_as,
            } => {
                fp.push_u64(2);
                fp.push_usize(*suspect_label);
                fp.push_usize(*executes_as);
            }
            RepairPlan::StrengthenStructure => fp.push_u64(3),
        }
    }

    /// Fingerprint of a repair execution: the full scenario identity
    /// (data, training and DeepMorph configuration), the content
    /// fingerprint of the model being repaired, and the plan. The model
    /// fingerprint matters because UTD label cleaning relabels by the
    /// *model's* footprints — two different models repaired under the same
    /// scenario and plan can produce different repaired training sets.
    pub fn repair_fingerprint(
        scenario: &Scenario,
        model_fingerprint: &str,
        plan: &RepairPlan,
    ) -> Fingerprint {
        let mut fp = Fingerprinter::new("deepmorph/stage/repaired/v1");
        fp.push_fingerprint(&Self::report_fingerprint(scenario));
        fp.push_str(model_fingerprint);
        Self::push_plan(&mut fp, plan);
        fp.finish()
    }

    // -- stage execution -----------------------------------------------

    /// Fetches + decodes an artifact, treating decode failures as misses.
    fn cached<T>(&self, key: &Fingerprint, decode: impl Fn(&[u8]) -> CodecResult<T>) -> Option<T> {
        let bytes = self.store.get(key)?;
        match decode(&bytes) {
            Ok(artifact) => Some(artifact),
            Err(_) => {
                // Corrupt or stale entry: recompute and overwrite.
                self.store.demote_hit();
                None
            }
        }
    }

    /// The fit/holdout split used by stages 2–4, exactly as the monolithic
    /// pipeline computed it.
    fn split_train(train: &Dataset, probe: &ProbeTrainingConfig) -> (Dataset, Dataset, bool) {
        let mut split_rng = deepmorph_tensor::init::stream_rng(probe.seed, "holdout-split");
        let use_holdout = train.len() >= 10 * train.num_classes();
        if use_holdout {
            let (fit, holdout) = train.split_stratified(0.85, &mut split_rng);
            (fit, holdout, true)
        } else {
            (train.clone(), train.clone(), false)
        }
    }

    /// Stage 1: train (or load) the defective model and its faulty cases.
    ///
    /// # Errors
    ///
    /// Propagates scenario and training errors.
    pub fn trained(&self, scenario: &Scenario) -> Result<TrainedModelArtifact> {
        let key = Self::trained_fingerprint(scenario);
        if let Some(artifact) = self.cached(&key, TrainedModelArtifact::decode) {
            return Ok(artifact);
        }
        let (train, test) = scenario.injected_data()?;
        let removed = match &scenario.cfg.defect {
            DefectSpec::Sd { removed_convs } => *removed_convs,
            _ => 0,
        };
        let (mut model, train_accuracy) = scenario.train_fresh(&train, removed, "")?;
        let test_accuracy = evaluate_accuracy(&mut model.graph, test.images(), test.labels(), 64)?;
        let (faulty, total_faulty) = FaultyCases::collect_capped(
            &mut model,
            &test,
            scenario.cfg.deepmorph.max_faulty_cases,
        )?;
        let artifact = TrainedModelArtifact {
            model_bytes: encode_model(&mut model),
            train_accuracy,
            test_accuracy,
            faulty,
            total_faulty,
        };
        self.store.put(&key, &artifact.encode());
        Ok(artifact)
    }

    /// Stage 2: fit (or load) the auxiliary softmax probes.
    ///
    /// # Errors
    ///
    /// Propagates instrumentation errors.
    pub fn instrumented(
        &self,
        scenario: &Scenario,
        trained: &TrainedModelArtifact,
    ) -> Result<InstrumentedArtifact> {
        let key = Self::instrumented_fingerprint(scenario);
        if let Some(artifact) = self.cached(&key, InstrumentedArtifact::decode) {
            return Ok(artifact);
        }
        let model = trained.instantiate()?;
        let (train, _test) = scenario.injected_data()?;
        let (fit, _holdout, _use) = Self::split_train(&train, &scenario.cfg.deepmorph.probe);
        let inst = InstrumentedModel::build(
            model,
            fit.images(),
            fit.labels(),
            train.num_classes(),
            &scenario.cfg.deepmorph.probe,
        )?;
        let artifact = InstrumentedArtifact::from_model(&inst);
        self.store.put(&key, &artifact.encode());
        Ok(artifact)
    }

    /// Stage 3: extract (or load) fit/holdout/faulty footprints.
    ///
    /// # Errors
    ///
    /// Propagates network errors.
    pub fn footprints(
        &self,
        scenario: &Scenario,
        trained: &TrainedModelArtifact,
        instrumented: &InstrumentedArtifact,
    ) -> Result<FootprintArtifact> {
        let key = Self::footprint_fingerprint(scenario);
        if let Some(artifact) = self.cached(&key, FootprintArtifact::decode) {
            return Ok(artifact);
        }
        let model = trained.instantiate()?;
        let mut inst = instrumented.instantiate(model)?;
        let (train, _test) = scenario.injected_data()?;
        let (fit, holdout, use_holdout) = Self::split_train(&train, &scenario.cfg.deepmorph.probe);
        let fit_fps = inst.footprints(fit.images())?;
        let holdout_fps = if use_holdout {
            Some(inst.footprints(holdout.images())?)
        } else {
            None
        };
        let faulty_fps = inst.footprints(&trained.faulty.images)?;
        let artifact = FootprintArtifact {
            fit: fit_fps,
            holdout: holdout_fps,
            faulty: faulty_fps,
        };
        self.store.put(&key, &artifact.encode());
        Ok(artifact)
    }

    /// Stage 4: learn patterns, classify, and assemble (or load) the
    /// report.
    ///
    /// # Errors
    ///
    /// Propagates pattern-learning errors.
    pub fn report(
        &self,
        scenario: &Scenario,
        trained: &TrainedModelArtifact,
        instrumented: &InstrumentedArtifact,
        footprints: &FootprintArtifact,
    ) -> Result<DefectReport> {
        let key = Self::report_fingerprint(scenario);
        if let Some(report) = self.cached(&key, |bytes| {
            let payload = open_container(REPORT_MAGIC, bytes)?;
            let text = std::str::from_utf8(payload).map_err(|_| CodecError::Invalid {
                context: "report payload is not UTF-8".into(),
            })?;
            DefectReport::from_json(text).map_err(|e| CodecError::Invalid {
                context: format!("report json: {e}"),
            })
        }) {
            return Ok(report);
        }

        let (train, _test) = scenario.injected_data()?;
        let (fit, holdout, use_holdout) = Self::split_train(&train, &scenario.cfg.deepmorph.probe);
        let probe_accuracies = instrumented.probe_accuracies();
        let patterns = if use_holdout {
            let holdout_fps =
                footprints
                    .holdout
                    .as_ref()
                    .ok_or_else(|| DeepMorphError::Artifact {
                        reason: "footprint artifact lacks the holdout split".into(),
                    })?;
            ClassPatterns::learn_with_holdout(
                &footprints.fit,
                fit.labels(),
                holdout_fps,
                holdout.labels(),
                probe_accuracies.clone(),
            )?
        } else {
            ClassPatterns::learn(&footprints.fit, fit.labels(), probe_accuracies.clone())?
        };

        let faulty = &trained.faulty;
        let specifics: Vec<FootprintSpecifics> = footprints
            .faulty
            .iter()
            .zip(faulty.true_labels.iter().zip(&faulty.predicted))
            .map(|(fp, (&t, &p))| {
                FootprintSpecifics::compute(
                    fp,
                    t,
                    p,
                    &patterns,
                    scenario.cfg.deepmorph.classifier.metric,
                )
            })
            .collect();

        let classifier = DefectClassifier::new(scenario.cfg.deepmorph.classifier);
        let (scores, ratios) = classifier.classify(&specifics, &patterns);
        let cases = scores
            .iter()
            .enumerate()
            .map(|(i, s)| CaseDiagnosis {
                case_index: i,
                true_label: faulty.true_labels[i],
                predicted: faulty.predicted[i],
                assigned: s.assigned().abbrev().to_string(),
                score_distribution: s.distribution(),
            })
            .collect();
        let report = DefectReport {
            ratios: DefectRatios::new(ratios),
            num_cases: specifics.len(),
            probe_labels: footprints.fit.probe_labels().to_vec(),
            probe_accuracies,
            model_health: patterns.health(),
            cases,
            subject: scenario.subject(),
        };
        self.store.put(
            &key,
            &seal_container(REPORT_MAGIC, report.to_json().as_bytes()),
        );
        Ok(report)
    }

    /// Drives all four stages and assembles the outcome, returning the
    /// intermediate artifacts the repair path also needs.
    fn run_stages(
        &self,
        scenario: &Scenario,
    ) -> Result<(ScenarioOutcome, TrainedModelArtifact, InstrumentedArtifact)> {
        let trained = self.trained(scenario)?;
        if trained.faulty.is_empty() {
            return Err(DeepMorphError::NoFaultyCases);
        }
        let instrumented = self.instrumented(scenario, &trained)?;
        let footprints = self.footprints(scenario, &trained, &instrumented)?;
        let report = self.report(scenario, &trained, &instrumented, &footprints)?;
        let outcome = ScenarioOutcome {
            report,
            test_accuracy: trained.test_accuracy,
            train_accuracy: trained.train_accuracy,
            faulty_count: trained.total_faulty,
            defect: scenario.cfg.defect.clone(),
            subject: scenario.subject(),
        };
        Ok((outcome, trained, instrumented))
    }

    /// Runs all four stages and assembles the outcome — the staged
    /// equivalent of the old monolithic `Scenario::run`, bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`DeepMorphError::NoFaultyCases`] if the trained model is
    /// perfect on the test set, and propagates stage errors.
    pub fn run(&self, scenario: &Scenario) -> Result<ScenarioOutcome> {
        Ok(self.run_stages(scenario)?.0)
    }

    /// Executes a repair plan against a concrete model: applies the plan
    /// to the scenario's (injected) training set, retrains from scratch,
    /// and evaluates the result on the clean test set. Cached in the
    /// store under [`StagedEngine::repair_fingerprint`], so re-repairing
    /// an unchanged model with an unchanged plan loads instead of
    /// retraining. `instrumented` must wrap the model identified by
    /// `model_fingerprint`; only UTD label cleaning consults it (relabels
    /// samples whose last-probe class executes as the clean pair's class).
    ///
    /// # Errors
    ///
    /// Propagates data, training, and network errors.
    pub fn repaired(
        &self,
        scenario: &Scenario,
        model_fingerprint: &str,
        plan: &RepairPlan,
        instrumented: &mut InstrumentedModel,
    ) -> Result<RepairedModelArtifact> {
        let key = Self::repair_fingerprint(scenario, model_fingerprint, plan);
        if let Some(artifact) = self.cached(&key, RepairedModelArtifact::decode) {
            return Ok(artifact);
        }
        let (train, test) = scenario.injected_data()?;
        let repaired_train: Dataset = match plan {
            RepairPlan::CollectMoreData { classes } => {
                // Simulate collecting more data: draw fresh samples of the
                // starved classes from the generator.
                let mut rng =
                    deepmorph_tensor::init::stream_rng(scenario.cfg.seed, "scenario-repair-data");
                let extra =
                    scenario.generate_for_classes(classes, scenario.cfg.train_per_class, &mut rng);
                train.concat(&extra)?
            }
            RepairPlan::CleanLabels {
                suspect_label,
                executes_as,
            } => {
                // Relabel training samples that carry the suspect label but
                // execute as the other class of the pair.
                let fps = instrumented.footprints(train.images())?;
                let mut cleaned = train.clone();
                for (i, fp) in fps.iter().enumerate() {
                    if cleaned.labels()[i] == *suspect_label {
                        let probe_class = deepmorph_tensor::stats::argmax(fp.last());
                        if probe_class == *executes_as {
                            cleaned.set_label(i, *executes_as);
                        }
                    }
                }
                cleaned
            }
            RepairPlan::StrengthenStructure => train.clone(),
        };

        let (mut repaired_model, _) = scenario.train_fresh(&repaired_train, 0, "-repair")?;
        let accuracy_after =
            evaluate_accuracy(&mut repaired_model.graph, test.images(), test.labels(), 64)?;
        let artifact = RepairedModelArtifact {
            model_bytes: encode_model(&mut repaired_model),
            accuracy_after,
            repaired_train_size: repaired_train.len(),
        };
        self.store.put(&key, &artifact.encode());
        Ok(artifact)
    }

    /// Runs the staged pipeline, then applies DeepMorph's recommended
    /// repair and retrains, measuring the improvement.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StagedEngine::run`], plus
    /// [`DeepMorphError::InvalidScenario`] when no repair can be derived
    /// from the report.
    pub fn run_with_repair(&self, scenario: &Scenario) -> Result<(ScenarioOutcome, RepairOutcome)> {
        let (outcome, trained, instrumented) = self.run_stages(scenario)?;

        let plan = recommend(&outcome.report).ok_or_else(|| DeepMorphError::InvalidScenario {
            reason: "no repair plan can be derived from the report".into(),
        })?;
        let mut inst = instrumented.instantiate(trained.instantiate()?)?;
        let repaired = self.repaired(
            scenario,
            &content_fingerprint(&trained.model_bytes),
            &plan,
            &mut inst,
        )?;
        let repair = RepairOutcome {
            plan,
            accuracy_before: outcome.test_accuracy,
            accuracy_after: repaired.accuracy_after,
            repaired_train_size: repaired.repaired_train_size,
        };
        Ok((outcome, repair))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmorph_data::DatasetKind;
    use deepmorph_models::ModelFamily;

    fn tiny_scenario() -> Scenario {
        Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
            .seed(42)
            .train_per_class(12)
            .test_per_class(4)
            .train_config(deepmorph_nn::prelude::TrainConfig {
                epochs: 1,
                batch_size: 16,
                ..Default::default()
            })
            .inject(DefectSpec::insufficient_training_data(vec![0, 1, 2], 0.98))
            .build()
            .unwrap()
    }

    #[test]
    fn stage_fingerprints_chain() {
        let s = tiny_scenario();
        // Stage fingerprints must all differ (domain separation).
        let fps = [
            StagedEngine::trained_fingerprint(&s),
            StagedEngine::instrumented_fingerprint(&s),
            StagedEngine::footprint_fingerprint(&s),
            StagedEngine::report_fingerprint(&s),
        ];
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(fps[i], fps[j]);
            }
        }
    }

    #[test]
    fn repaired_stage_caches_by_model_and_plan() {
        let s = tiny_scenario();
        let engine = StagedEngine::new(ArtifactStore::in_memory());
        let trained = engine.trained(&s).unwrap();
        let instrumented = engine.instrumented(&s, &trained).unwrap();
        let model_fp = content_fingerprint(&trained.model_bytes);
        let plan = RepairPlan::CollectMoreData {
            classes: vec![0, 1],
        };

        let mut inst = instrumented
            .instantiate(trained.instantiate().unwrap())
            .unwrap();
        let before = engine.store().stats();
        let first = engine.repaired(&s, &model_fp, &plan, &mut inst).unwrap();
        let mid = engine.store().stats();
        assert_eq!(mid.since(&before).writes, 1);

        // The second identical repair loads instead of retraining, and the
        // cached artifact is bitwise identical to the computed one.
        let second = engine.repaired(&s, &model_fp, &plan, &mut inst).unwrap();
        let after = engine.store().stats();
        assert_eq!(after.since(&mid).hits, 1);
        assert_eq!(after.since(&mid).writes, 0);
        assert_eq!(second.model_bytes, first.model_bytes);
        assert_eq!(
            second.accuracy_after.to_bits(),
            first.accuracy_after.to_bits()
        );
        assert_eq!(second.repaired_train_size, first.repaired_train_size);

        // A different plan or a different model never aliases the cache.
        let key = StagedEngine::repair_fingerprint(&s, &model_fp, &plan);
        assert_ne!(
            key,
            StagedEngine::repair_fingerprint(&s, &model_fp, &RepairPlan::StrengthenStructure)
        );
        assert_ne!(
            key,
            StagedEngine::repair_fingerprint(&s, "another-model-fp", &plan)
        );

        // The artifact codec round-trips and rejects corruption.
        let bytes = first.encode();
        let back = RepairedModelArtifact::decode(&bytes).unwrap();
        assert_eq!(back.model_bytes, first.model_bytes);
        assert!(RepairedModelArtifact::decode(&bytes[..bytes.len() / 2]).is_err());
    }

    #[test]
    fn trained_artifact_round_trips() {
        let s = tiny_scenario();
        let engine = StagedEngine::ephemeral();
        let artifact = engine.trained(&s).unwrap();
        let bytes = artifact.encode();
        let back = TrainedModelArtifact::decode(&bytes).unwrap();
        assert_eq!(back.train_accuracy, artifact.train_accuracy);
        assert_eq!(back.test_accuracy, artifact.test_accuracy);
        assert_eq!(back.total_faulty, artifact.total_faulty);
        assert_eq!(back.faulty, artifact.faulty);
        // The reinstantiated model must predict identically.
        let mut a = artifact.instantiate().unwrap();
        let mut b = back.instantiate().unwrap();
        let (_, test) = s.injected_data().unwrap();
        let pa = deepmorph_nn::train::predict_all(&mut a.graph, test.images(), 64).unwrap();
        let pb = deepmorph_nn::train::predict_all(&mut b.graph, test.images(), 64).unwrap();
        assert_eq!(pa, pb);
    }

    #[test]
    fn corrupt_artifacts_decode_to_typed_errors() {
        let s = tiny_scenario();
        let engine = StagedEngine::ephemeral();
        let artifact = engine.trained(&s).unwrap();
        let mut bytes = artifact.encode();
        assert!(TrainedModelArtifact::decode(&bytes[..10]).is_err());
        let mid = bytes.len() / 3;
        bytes[mid] ^= 0x10;
        assert!(matches!(
            TrainedModelArtifact::decode(&bytes).unwrap_err(),
            CodecError::ChecksumMismatch { .. }
        ));
    }
}
