//! The defect classifier.
//!
//! DeepMorph's last stage (paper Fig. 1): "by examining the process, layer
//! by layer, of how inputs are misclassified, DeepMorph can then reason the
//! defect that causes the faulty cases". Each faulty case is scored against
//! the three defect signatures formalized in DESIGN.md:
//!
//! * **SD** — the model itself is weak: its *training* data is poorly
//!   separated even at the deepest probes (low health), and early-layer
//!   alignments carry no margin.
//! * **ITD** — the case is out-of-distribution: it aligns with *no* class
//!   pattern anywhere (high novelty) and the final layers are uncertain
//!   rather than confidently wrong.
//! * **UTD** — the model learned a confusion: the footprint flips to a
//!   specific wrong class *with confidence*, and the same (true → predicted)
//!   pair recurs across the faulty cases.
//!
//! Each case is assigned to its best-scoring defect; the report's ratios
//! are the assignment fractions (matching how Table I rows sum to ≈ 1).

use deepmorph_tensor::stats;

use deepmorph_defects::DefectKind;

use crate::pattern::ClassPatterns;
use crate::specifics::FootprintSpecifics;

/// Footprint-to-pattern alignment metric (DESIGN.md ablation point 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignmentMetric {
    /// `1 - JSD/ln2` on probe distributions (default).
    JensenShannon,
    /// Cosine similarity on probe distributions.
    Cosine,
}

impl AlignmentMetric {
    /// Similarity in `[0, 1]` between two probe distributions.
    pub fn similarity(self, p: &[f32], q: &[f32]) -> f32 {
        match self {
            AlignmentMetric::JensenShannon => stats::js_similarity(p, q),
            AlignmentMetric::Cosine => stats::cosine_similarity(p, q).clamp(0.0, 1.0),
        }
    }
}

/// Signature weights. The defaults were calibrated once against the
/// feature distributions printed by the `calibrate` binary (see the
/// calibration notes in DESIGN.md) and are deliberately *not* per-model:
/// Table I uses a single configuration across all four architectures, as
/// the paper does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignatureWeights {
    /// ITD: weight of the true class being starved in the training set.
    pub itd_starvation: f32,
    /// ITD: weight of final-layer uncertainty.
    pub itd_entropy: f32,
    /// ITD: weight of prediction scatter (errors not forming one pair).
    pub itd_scatter: f32,
    /// ITD: weight of footprint novelty.
    pub itd_novelty: f32,
    /// UTD: weight of training-set contamination along this case's
    /// (predicted → true) direction.
    pub utd_contamination: f32,
    /// UTD: weight of the training set's overall label-noise concentration
    /// (population evidence independent of the individual case).
    pub utd_noise_concentration: f32,
    /// UTD: weight of confident wrong prediction (scaled by model health).
    pub utd_confidence: f32,
    /// UTD: weight of (true → predicted) pair recurrence.
    pub utd_pair_concentration: f32,
    /// SD: weight of probe/model disagreement (footprint stays on the true
    /// class while the model head predicts something else).
    pub sd_probe_disagreement: f32,
    /// SD: weight of low model health (training data inseparable).
    pub sd_unhealth: f32,
    /// SD: weight of missing early-layer margin on an unhealthy model.
    pub sd_early_flatness: f32,
}

impl Default for SignatureWeights {
    fn default() -> Self {
        SignatureWeights {
            itd_starvation: 0.50,
            itd_entropy: 0.20,
            itd_scatter: 0.20,
            itd_novelty: 0.10,
            utd_contamination: 0.45,
            utd_noise_concentration: 0.25,
            utd_confidence: 0.15,
            utd_pair_concentration: 0.15,
            sd_probe_disagreement: 0.65,
            sd_unhealth: 0.35,
            sd_early_flatness: 0.10,
        }
    }
}

/// Classifier configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassifierConfig {
    /// Alignment metric for footprint-vs-pattern comparison.
    pub metric: AlignmentMetric,
    /// Include population-level evidence (pair/class concentrations across
    /// all faulty cases). Disabling this is DESIGN.md ablation point 3.
    pub use_population: bool,
    /// Signature weights.
    pub weights: SignatureWeights,
}

impl Default for ClassifierConfig {
    fn default() -> Self {
        ClassifierConfig {
            metric: AlignmentMetric::JensenShannon,
            use_population: true,
            weights: SignatureWeights::default(),
        }
    }
}

/// Population-level evidence shared by all cases of one diagnosis run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PopulationEvidence {
    /// Largest fraction of faulty cases sharing one (true, predicted) pair.
    pub pair_concentration: f32,
    /// 1 − normalized entropy of the true-label histogram (1 = all faulty
    /// cases come from one class).
    pub true_concentration: f32,
    /// 1 − normalized entropy of the predicted-label histogram.
    pub pred_concentration: f32,
}

impl PopulationEvidence {
    /// Computes the evidence from the faulty cases' labels.
    pub fn compute(cases: &[FootprintSpecifics], num_classes: usize) -> Self {
        if cases.is_empty() {
            return PopulationEvidence {
                pair_concentration: 0.0,
                true_concentration: 0.0,
                pred_concentration: 0.0,
            };
        }
        let n = cases.len() as f32;
        let mut pair_counts = std::collections::HashMap::new();
        let mut true_hist = vec![0.0f32; num_classes];
        let mut pred_hist = vec![0.0f32; num_classes];
        for c in cases {
            *pair_counts
                .entry((c.true_label, c.predicted))
                .or_insert(0usize) += 1;
            true_hist[c.true_label] += 1.0;
            pred_hist[c.predicted] += 1.0;
        }
        let pair_concentration = pair_counts.values().copied().max().unwrap_or(0) as f32 / n;
        stats::normalize_in_place(&mut true_hist);
        stats::normalize_in_place(&mut pred_hist);
        PopulationEvidence {
            pair_concentration,
            true_concentration: 1.0 - stats::normalized_entropy(&true_hist),
            pred_concentration: 1.0 - stats::normalized_entropy(&pred_hist),
        }
    }

    /// Neutral evidence used when population analysis is disabled: every
    /// population term contributes half weight, so per-case trajectory
    /// evidence alone decides.
    pub fn neutral() -> Self {
        PopulationEvidence {
            pair_concentration: 0.5,
            true_concentration: 0.5,
            pred_concentration: 0.5,
        }
    }
}

/// Raw per-case signature scores (before assignment).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseScores {
    /// Score for ITD / UTD / SD in [`DefectKind::all`] order.
    pub scores: [f32; 3],
}

impl CaseScores {
    /// The winning defect kind.
    pub fn assigned(&self) -> DefectKind {
        DefectKind::all()[stats::argmax(&self.scores)]
    }

    /// Scores normalized to a distribution.
    pub fn distribution(&self) -> [f32; 3] {
        let mut d = self.scores;
        let total: f32 = d.iter().sum();
        if total > 0.0 {
            for v in &mut d {
                *v /= total;
            }
        } else {
            d = [1.0 / 3.0; 3];
        }
        d
    }
}

/// Scores footprint specifics against the three defect signatures.
#[derive(Debug, Clone, Default)]
pub struct DefectClassifier {
    config: ClassifierConfig,
}

impl DefectClassifier {
    /// Creates a classifier with the given configuration.
    pub fn new(config: ClassifierConfig) -> Self {
        DefectClassifier { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &ClassifierConfig {
        &self.config
    }

    /// Scores every case and returns `(per-case scores, ratios)`, where
    /// `ratios[i]` is the fraction of cases assigned to
    /// `DefectKind::all()[i]`.
    pub fn classify(
        &self,
        cases: &[FootprintSpecifics],
        patterns: &ClassPatterns,
    ) -> (Vec<CaseScores>, [f32; 3]) {
        let population = if self.config.use_population {
            PopulationEvidence::compute(cases, patterns.num_classes())
        } else {
            PopulationEvidence::neutral()
        };
        let scores: Vec<CaseScores> = cases
            .iter()
            .map(|c| self.score_case(c, patterns, &population))
            .collect();
        let mut ratios = [0.0f32; 3];
        for s in &scores {
            ratios[s.assigned().index()] += 1.0;
        }
        let n = scores.len().max(1) as f32;
        for r in &mut ratios {
            *r /= n;
        }
        (scores, ratios)
    }

    /// Scores one case. Exposed for tests and the ablation bench.
    pub fn score_case(
        &self,
        case: &FootprintSpecifics,
        patterns: &ClassPatterns,
        population: &PopulationEvidence,
    ) -> CaseScores {
        let w = &self.config.weights;
        let health = patterns.health();
        // Early-layer margin relative to the training baseline: a weak
        // model never develops margins, so both the case and the baseline
        // are flat; a healthy model has a baseline the case can fail to
        // reach.
        let margin_baseline = patterns.early_margin_baseline().max(1e-3);
        let early_margin_rel = (case.early_margin / margin_baseline).clamp(0.0, 1.0);

        // ITD: the case's true class is starved in the *data flow* of the
        // training set (nothing executes like it, whatever the labels
        // say), the network is consequently uncertain, and errors scatter
        // instead of forming one (true, predicted) pair. Starvation is
        // squared so residual imbalance never masquerades as ITD, and
        // gated by health: when the probes are near chance (a crippled
        // structure), the flow histogram is unreadable and a skewed one
        // must not fake a data hole.
        let starvation = patterns.starvation(case.true_label) * health;
        let itd = w.itd_starvation * starvation * starvation
            + w.itd_entropy * case.final_entropy
            + w.itd_scatter
                * population.true_concentration
                * (1.0 - population.pair_concentration).max(0.0)
            + w.itd_novelty * case.novelty;

        // UTD: the training set itself is contaminated along this case's
        // confusion pair. The fingerprint appears in either direction
        // depending on how far the backbone adopted the corruption:
        // lightly-trained models leave samples *labeled* `predicted` that
        // execute like `true_label`; heavily-trained ones drag the
        // remaining genuine `true_label` samples toward `predicted`
        // (labeled `true_label`, executing like `predicted`). Either way
        // the (true, predicted) pair lights up, so take the max (a 40%
        // relabel yields contamination ≈ 0.3; probe error is ≈ 0.03, so a
        // 3x gain saturates the real signal while noise stays small). The
        // per-case term is damped by how concentrated the overall label
        // noise is, so a weak model's diffuse probe errors do not imitate
        // mislabeling; the same concentration is population-level UTD
        // evidence on its own.
        let noise = patterns.concentrated_label_noise();
        let pair_contamination = patterns
            .contamination(case.predicted, case.true_label)
            .max(patterns.contamination(case.true_label, case.predicted));
        let contamination = (3.0 * pair_contamination).clamp(0.0, 1.0);
        let utd = w.utd_contamination * contamination * noise.max(0.25)
            + w.utd_noise_concentration * noise
            + w.utd_confidence * case.final_conf_pred * health
            + w.utd_pair_concentration * population.pair_concentration * (1.0 - starvation);

        // SD: the probes say the features support the true class all the
        // way down (late flip or none, low probe probability for the
        // model's prediction), yet the head misclassifies — the structure
        // cannot exploit its own features. Low health (training data never
        // separates) and flat early margins corroborate. Concentrated
        // label noise explains away the probe/model disagreement.
        let sd = w.sd_probe_disagreement
            * case.flip_fraction
            * (1.0 - case.final_conf_pred)
            * (1.0 - noise)
            * (1.0 - starvation)
            + w.sd_unhealth * (1.0 - health)
            + w.sd_early_flatness * (1.0 - early_margin_rel) * (1.0 - health);

        CaseScores {
            scores: [itd.max(0.0), utd.max(0.0), sd.max(0.0)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::{Footprint, FootprintSet};

    fn patterns_with_health(last_acc: f32) -> ClassPatterns {
        let mut fps = Vec::new();
        let mut labels = Vec::new();
        for c in 0..4usize {
            for _ in 0..5 {
                let mut layers = Vec::new();
                for l in 0..4usize {
                    let sharp = (l + 1) as f32 / 4.0;
                    let mut dist = vec![(1.0 - sharp) / 4.0; 4];
                    dist[c] += sharp;
                    layers.push(dist);
                }
                fps.push(Footprint::new(layers));
                labels.push(c);
            }
        }
        let set = FootprintSet::new(fps, (0..4).map(|l| format!("l{l}")).collect(), 4);
        ClassPatterns::learn(&set, &labels, vec![0.3, 0.5, 0.8, last_acc]).unwrap()
    }

    fn case(
        novelty: f32,
        entropy: f32,
        conf: f32,
        late_pred: f32,
        early_margin: f32,
    ) -> FootprintSpecifics {
        FootprintSpecifics {
            true_label: 0,
            predicted: 1,
            early_align_true: 0.5,
            late_align_true: 0.3,
            late_align_pred: late_pred,
            best_align_mean: 0.5,
            early_margin,
            flip_fraction: 0.5,
            final_entropy: entropy,
            final_conf_pred: conf,
            novelty,
        }
    }

    #[test]
    fn novel_uncertain_cases_score_itd() {
        let classifier = DefectClassifier::default();
        let patterns = patterns_with_health(0.95);
        let pop = PopulationEvidence {
            pair_concentration: 0.2,
            true_concentration: 0.8,
            pred_concentration: 0.3,
        };
        let c = case(0.8, 0.9, 0.3, 0.3, 0.1);
        let s = classifier.score_case(&c, &patterns, &pop);
        assert_eq!(s.assigned(), DefectKind::InsufficientTrainingData);
    }

    #[test]
    fn confident_pair_confusions_score_utd() {
        let classifier = DefectClassifier::default();
        let patterns = patterns_with_health(0.95);
        let pop = PopulationEvidence {
            pair_concentration: 0.85,
            true_concentration: 0.9,
            pred_concentration: 0.9,
        };
        let c = case(0.1, 0.1, 0.95, 0.9, 0.4);
        let s = classifier.score_case(&c, &patterns, &pop);
        assert_eq!(s.assigned(), DefectKind::UnreliableTrainingData);
    }

    #[test]
    fn unhealthy_model_scores_sd() {
        let classifier = DefectClassifier::default();
        let patterns = patterns_with_health(0.15); // barely above chance
        let pop = PopulationEvidence {
            pair_concentration: 0.1,
            true_concentration: 0.2,
            pred_concentration: 0.2,
        };
        let c = case(0.3, 0.6, 0.4, 0.4, 0.02);
        let s = classifier.score_case(&c, &patterns, &pop);
        assert_eq!(s.assigned(), DefectKind::StructureDefect);
    }

    #[test]
    fn ratios_sum_to_one() {
        let classifier = DefectClassifier::default();
        let patterns = patterns_with_health(0.9);
        let cases: Vec<FootprintSpecifics> = (0..10)
            .map(|i| case(0.1 * i as f32 / 10.0, 0.5, 0.5, 0.5, 0.2))
            .collect();
        let (scores, ratios) = classifier.classify(&cases, &patterns);
        assert_eq!(scores.len(), 10);
        assert!((ratios.iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn distribution_normalizes() {
        let s = CaseScores {
            scores: [1.0, 3.0, 0.0],
        };
        let d = s.distribution();
        assert!((d.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!((d[1] - 0.75).abs() < 1e-6);
        let zero = CaseScores { scores: [0.0; 3] };
        assert_eq!(zero.distribution(), [1.0 / 3.0; 3]);
    }

    #[test]
    fn population_evidence_detects_pair_concentration() {
        let mut cases = Vec::new();
        for _ in 0..8 {
            cases.push(case(0.1, 0.1, 0.9, 0.9, 0.3)); // all (0 -> 1)
        }
        let mut other = case(0.1, 0.1, 0.9, 0.9, 0.3);
        other.true_label = 2;
        other.predicted = 3;
        cases.push(other);
        let pop = PopulationEvidence::compute(&cases, 4);
        assert!(pop.pair_concentration > 0.8);
        assert!(pop.true_concentration > 0.4);
        let empty = PopulationEvidence::compute(&[], 4);
        assert_eq!(empty.pair_concentration, 0.0);
    }
}
