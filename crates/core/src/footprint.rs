//! Data-flow footprints.
//!
//! A *footprint* (paper Section III) is the trace an input leaves as it
//! flows through the network: at every probed hidden layer, the auxiliary
//! softmax turns the activation into a distribution over target classes.
//! The footprint is the sequence of these distributions from the first
//! probe to the last — "how the distinct features of an input case are
//! extracted layer by layer gradually".

use deepmorph_tensor::stats;

/// One input's per-layer probe-distribution trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct Footprint {
    /// `probs[l][c]` = probability of class `c` at probe layer `l`.
    probs: Vec<Vec<f32>>,
}

impl Footprint {
    /// Wraps a trajectory; every layer must have the same class count.
    ///
    /// # Panics
    ///
    /// Debug-asserts layer widths agree.
    pub fn new(probs: Vec<Vec<f32>>) -> Self {
        debug_assert!(
            probs.windows(2).all(|w| w[0].len() == w[1].len()),
            "footprint layers disagree on class count"
        );
        Footprint { probs }
    }

    /// Number of probed layers.
    pub fn depth(&self) -> usize {
        self.probs.len()
    }

    /// Probe distribution at layer `l`.
    pub fn layer(&self, l: usize) -> &[f32] {
        &self.probs[l]
    }

    /// All layers, first to last.
    pub fn layers(&self) -> &[Vec<f32>] {
        &self.probs
    }

    /// The final (deepest) probe distribution.
    ///
    /// # Panics
    ///
    /// Panics on an empty footprint.
    pub fn last(&self) -> &[f32] {
        self.probs.last().expect("footprint has at least one layer")
    }

    /// Class predicted by the probe at layer `l`.
    pub fn argmax_at(&self, l: usize) -> usize {
        stats::argmax(&self.probs[l])
    }

    /// First probed layer whose argmax differs from `label`, as a fraction
    /// of depth (`1.0` = never flips).
    pub fn flip_fraction(&self, label: usize) -> f32 {
        for (l, p) in self.probs.iter().enumerate() {
            if stats::argmax(p) != label {
                return l as f32 / self.depth().max(1) as f32;
            }
        }
        1.0
    }

    /// Normalized entropy of the final probe distribution.
    pub fn final_entropy(&self) -> f32 {
        stats::normalized_entropy(self.last())
    }
}

/// Footprints of a batch of inputs, with probe metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct FootprintSet {
    footprints: Vec<Footprint>,
    probe_labels: Vec<String>,
    num_classes: usize,
}

impl FootprintSet {
    /// Bundles footprints with their probe labels.
    pub fn new(footprints: Vec<Footprint>, probe_labels: Vec<String>, num_classes: usize) -> Self {
        FootprintSet {
            footprints,
            probe_labels,
            num_classes,
        }
    }

    /// Number of cases.
    pub fn len(&self) -> usize {
        self.footprints.len()
    }

    /// `true` if the set holds no footprints.
    pub fn is_empty(&self) -> bool {
        self.footprints.is_empty()
    }

    /// Number of probed layers.
    pub fn depth(&self) -> usize {
        self.probe_labels.len()
    }

    /// Number of target classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// The footprint of case `i`.
    pub fn footprint(&self, i: usize) -> &Footprint {
        &self.footprints[i]
    }

    /// All footprints.
    pub fn footprints(&self) -> &[Footprint] {
        &self.footprints
    }

    /// Probe stage labels, input → output order.
    pub fn probe_labels(&self) -> &[String] {
        &self.probe_labels
    }

    /// Iterates over the footprints.
    pub fn iter(&self) -> std::slice::Iter<'_, Footprint> {
        self.footprints.iter()
    }
}

impl<'a> IntoIterator for &'a FootprintSet {
    type Item = &'a Footprint;
    type IntoIter = std::slice::Iter<'a, Footprint>;

    fn into_iter(self) -> Self::IntoIter {
        self.footprints.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(rows: &[&[f32]]) -> Footprint {
        Footprint::new(rows.iter().map(|r| r.to_vec()).collect())
    }

    #[test]
    fn accessors() {
        let f = fp(&[&[0.9, 0.1], &[0.2, 0.8]]);
        assert_eq!(f.depth(), 2);
        assert_eq!(f.layer(0), &[0.9, 0.1]);
        assert_eq!(f.last(), &[0.2, 0.8]);
        assert_eq!(f.argmax_at(0), 0);
        assert_eq!(f.argmax_at(1), 1);
    }

    #[test]
    fn flip_fraction_finds_first_divergence() {
        let f = fp(&[&[0.9, 0.1], &[0.6, 0.4], &[0.2, 0.8], &[0.1, 0.9]]);
        assert_eq!(f.flip_fraction(0), 0.5); // flips at layer 2 of 4
        assert_eq!(f.flip_fraction(1), 0.0); // wrong from the start
        let never = fp(&[&[0.9, 0.1], &[0.8, 0.2]]);
        assert_eq!(never.flip_fraction(0), 1.0);
    }

    #[test]
    fn final_entropy_distinguishes_confident_from_uncertain() {
        let confident = fp(&[&[0.5, 0.5], &[0.99, 0.01]]);
        let uncertain = fp(&[&[0.5, 0.5], &[0.5, 0.5]]);
        assert!(confident.final_entropy() < 0.1);
        assert!(uncertain.final_entropy() > 0.99);
    }

    #[test]
    fn set_iteration() {
        let set = FootprintSet::new(
            vec![fp(&[&[1.0, 0.0]]), fp(&[&[0.0, 1.0]])],
            vec!["l1".into()],
            2,
        );
        assert_eq!(set.len(), 2);
        assert_eq!(set.depth(), 1);
        assert_eq!(set.iter().count(), 2);
        assert_eq!((&set).into_iter().count(), 2);
    }
}
