//! Footprint specifics.
//!
//! The paper's "footprint specifics" summarize how a faulty case's data
//! flow compares, layer by layer, against the class execution patterns.
//! [`FootprintSpecifics`] is that summary: the scalar features the defect
//! classifier scores.

use deepmorph_tensor::stats;

use crate::classify::AlignmentMetric;
use crate::footprint::Footprint;
use crate::pattern::ClassPatterns;

/// Per-case comparison of a footprint against the class execution
/// patterns.
#[derive(Debug, Clone, PartialEq)]
pub struct FootprintSpecifics {
    /// Ground-truth label of the case.
    pub true_label: usize,
    /// The model's (wrong) prediction.
    pub predicted: usize,
    /// Mean alignment to the true class's pattern over the early half of
    /// the probed layers.
    pub early_align_true: f32,
    /// Mean alignment to the true class's pattern over the late half.
    pub late_align_true: f32,
    /// Mean alignment to the predicted class's pattern over the late half.
    pub late_align_pred: f32,
    /// Mean over layers of the best alignment to *any* class pattern.
    pub best_align_mean: f32,
    /// Mean alignment margin (best minus second best) over the early half.
    pub early_margin: f32,
    /// First layer (fraction of depth) where the probe argmax departs from
    /// the true label; `1.0` = never.
    pub flip_fraction: f32,
    /// Normalized entropy of the final probe distribution.
    pub final_entropy: f32,
    /// Final probe probability of the predicted class.
    pub final_conf_pred: f32,
    /// Novelty: how much worse this case aligns to its best-matching
    /// pattern than training cases align to their own (relative, clamped
    /// to `[0, 1]`).
    pub novelty: f32,
}

impl FootprintSpecifics {
    /// Computes the specifics of one faulty case.
    ///
    /// `metric` selects the footprint-to-pattern alignment function (the
    /// DESIGN.md ablation point).
    pub fn compute(
        footprint: &Footprint,
        true_label: usize,
        predicted: usize,
        patterns: &ClassPatterns,
        metric: AlignmentMetric,
    ) -> Self {
        let depth = footprint.depth();
        let k = patterns.num_classes();
        let half = depth.div_ceil(2);

        // Alignment matrix align[l][c].
        let mut align = vec![vec![0.0f32; k]; depth];
        for (l, row) in align.iter_mut().enumerate() {
            for (c, v) in row.iter_mut().enumerate() {
                *v = metric.similarity(footprint.layer(l), patterns.pattern(l, c));
            }
        }

        let mean_over = |layers: std::ops::Range<usize>, c: usize| -> f32 {
            let vals: Vec<f32> = layers.clone().map(|l| align[l][c]).collect();
            stats::mean(&vals)
        };
        let early_align_true = mean_over(0..half, true_label);
        let late_align_true = mean_over(half.min(depth - 1)..depth, true_label);
        let late_align_pred = mean_over(half.min(depth - 1)..depth, predicted);

        let best_per_layer: Vec<f32> = align
            .iter()
            .map(|row| row.iter().copied().fold(f32::NEG_INFINITY, f32::max))
            .collect();
        let best_align_mean = stats::mean(&best_per_layer);

        let early_margins: Vec<f32> = (0..half)
            .map(|l| {
                let (best, second) = stats::top2(&align[l]);
                (best - second).max(0.0)
            })
            .collect();
        let early_margin = stats::mean(&early_margins);

        let baseline = patterns.own_alignment_mean().max(1e-4);
        let novelty = ((baseline - best_align_mean) / baseline).clamp(0.0, 1.0);

        FootprintSpecifics {
            true_label,
            predicted,
            early_align_true,
            late_align_true,
            late_align_pred,
            best_align_mean,
            early_margin,
            flip_fraction: footprint.flip_fraction(true_label),
            final_entropy: footprint.final_entropy(),
            final_conf_pred: footprint.last().get(predicted).copied().unwrap_or(0.0),
            novelty,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::FootprintSet;

    fn patterns_3class() -> ClassPatterns {
        // Crisp synthetic training footprints for 3 classes, depth 4.
        let mut fps = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3usize {
            for _ in 0..6 {
                let mut layers = Vec::new();
                for l in 0..4usize {
                    let sharp = (l + 1) as f32 / 4.0;
                    let mut dist = vec![(1.0 - sharp) / 3.0; 3];
                    dist[c] += sharp;
                    layers.push(dist);
                }
                fps.push(Footprint::new(layers));
                labels.push(c);
            }
        }
        let set = FootprintSet::new(fps, vec!["a".into(), "b".into(), "c".into(), "d".into()], 3);
        ClassPatterns::learn(&set, &labels, vec![0.5, 0.7, 0.9, 1.0]).unwrap()
    }

    #[test]
    fn on_pattern_case_has_low_novelty() {
        let patterns = patterns_3class();
        // A case that follows class 0's pattern but was (mis)predicted 1.
        let fp = Footprint::new(vec![
            vec![0.42, 0.29, 0.29],
            vec![0.58, 0.21, 0.21],
            vec![0.75, 0.125, 0.125],
            vec![0.92, 0.04, 0.04],
        ]);
        let s = FootprintSpecifics::compute(&fp, 0, 1, &patterns, AlignmentMetric::JensenShannon);
        assert!(s.novelty < 0.1, "novelty {}", s.novelty);
        assert!(s.early_align_true > 0.8);
        assert_eq!(s.flip_fraction, 1.0);
    }

    #[test]
    fn uniform_case_is_novel_and_uncertain() {
        let patterns = patterns_3class();
        let fp = Footprint::new(vec![vec![1.0 / 3.0; 3]; 4]);
        let s = FootprintSpecifics::compute(&fp, 0, 1, &patterns, AlignmentMetric::JensenShannon);
        assert!(s.final_entropy > 0.99);
        assert!(s.early_margin < 0.05);
        // Uniform matches early patterns (which are near uniform) but not
        // late ones, so novelty is moderate rather than zero.
        assert!(s.novelty > 0.05, "novelty {}", s.novelty);
    }

    #[test]
    fn confident_flip_case_tracks_predicted_class_late() {
        let patterns = patterns_3class();
        // Starts on class 0's pattern, ends confidently on class 2's.
        let fp = Footprint::new(vec![
            vec![0.42, 0.29, 0.29],
            vec![0.45, 0.2, 0.35],
            vec![0.15, 0.1, 0.75],
            vec![0.04, 0.04, 0.92],
        ]);
        let s = FootprintSpecifics::compute(&fp, 0, 2, &patterns, AlignmentMetric::JensenShannon);
        assert!(s.late_align_pred > s.late_align_true);
        assert!(s.final_conf_pred > 0.9);
        assert!(s.flip_fraction <= 0.5);
        assert!(s.final_entropy < 0.4);
    }

    #[test]
    fn cosine_metric_also_works() {
        let patterns = patterns_3class();
        let fp = Footprint::new(vec![vec![0.5, 0.25, 0.25]; 4]);
        let s = FootprintSpecifics::compute(&fp, 0, 1, &patterns, AlignmentMetric::Cosine);
        assert!((0.0..=1.0).contains(&s.best_align_mean));
    }
}
