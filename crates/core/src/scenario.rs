//! End-to-end experiment scenarios.
//!
//! A [`Scenario`] packages the paper's Section IV protocol: generate a
//! dataset, inject a defect, train the (possibly defective) model, collect
//! the faulty cases from the clean test set, and run DeepMorph. The
//! examples and the Table I harness are thin wrappers around this type.

use deepmorph_data::{DataGenerator, Dataset, DatasetKind, SynthDigits, SynthObjects};
use deepmorph_defects::DefectSpec;
use deepmorph_models::{build_model, ModelFamily, ModelScale, ModelSpec};
use deepmorph_nn::prelude::{evaluate_accuracy, TrainConfig, Trainer};
use deepmorph_tensor::init::stream_rng;

use crate::instrument::InstrumentedModel;
use crate::pipeline::{DeepMorph, DeepMorphConfig, FaultyCases};
use crate::repair::{recommend, RepairPlan};
use crate::report::DefectReport;
use crate::{DeepMorphError, Result};

/// Builder for [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    family: ModelFamily,
    dataset: DatasetKind,
    seed: u64,
    scale: ModelScale,
    defect: DefectSpec,
    train_per_class: usize,
    test_per_class: usize,
    train_config: TrainConfig,
    deepmorph: DeepMorphConfig,
}

impl ScenarioBuilder {
    fn new(family: ModelFamily, dataset: DatasetKind) -> Self {
        ScenarioBuilder {
            family,
            dataset,
            seed: 0,
            scale: ModelScale::Tiny,
            defect: DefectSpec::Healthy,
            train_per_class: 100,
            test_per_class: 30,
            train_config: TrainConfig {
                epochs: 4,
                batch_size: 32,
                learning_rate: 0.05,
                ..TrainConfig::default()
            },
            deepmorph: DeepMorphConfig {
                max_faulty_cases: 200,
                ..DeepMorphConfig::default()
            },
        }
    }

    /// Sets the base seed controlling data, weights, and injection.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the model scale.
    pub fn scale(mut self, scale: ModelScale) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the defect to inject.
    pub fn inject(mut self, defect: DefectSpec) -> Self {
        self.defect = defect;
        self
    }

    /// Sets training samples generated per class (before injection).
    pub fn train_per_class(mut self, n: usize) -> Self {
        self.train_per_class = n;
        self
    }

    /// Sets test samples generated per class.
    pub fn test_per_class(mut self, n: usize) -> Self {
        self.test_per_class = n;
        self
    }

    /// Overrides the backbone training configuration.
    pub fn train_config(mut self, config: TrainConfig) -> Self {
        self.train_config = config;
        self
    }

    /// Overrides the DeepMorph configuration.
    pub fn deepmorph_config(mut self, config: DeepMorphConfig) -> Self {
        self.deepmorph = config;
        self
    }

    /// Validates and finalizes the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`DeepMorphError::InvalidScenario`] for empty datasets or a
    /// channel mismatch between dataset kind and model input.
    pub fn build(self) -> Result<Scenario> {
        if self.train_per_class == 0 || self.test_per_class == 0 {
            return Err(DeepMorphError::InvalidScenario {
                reason: "train_per_class and test_per_class must be positive".into(),
            });
        }
        Ok(Scenario { cfg: self })
    }
}

/// A fully-specified experiment: dataset × model × defect × seeds.
#[derive(Debug, Clone)]
pub struct Scenario {
    cfg: ScenarioBuilder,
}

/// Everything a finished scenario produced.
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The DeepMorph diagnosis.
    pub report: DefectReport,
    /// Accuracy of the trained (defective) model on the clean test set.
    pub test_accuracy: f32,
    /// Accuracy on its own (injected) training set.
    pub train_accuracy: f32,
    /// Number of faulty cases found on the test set (before capping).
    pub faulty_count: usize,
    /// The injected defect.
    pub defect: DefectSpec,
    /// Human-readable subject line ("LeNet on synth-digits, ITD(…)").
    pub subject: String,
}

impl Scenario {
    /// Starts building a scenario for a model family on a dataset kind.
    pub fn builder(family: ModelFamily, dataset: DatasetKind) -> ScenarioBuilder {
        ScenarioBuilder::new(family, dataset)
    }

    /// The configured defect.
    pub fn defect(&self) -> &DefectSpec {
        &self.cfg.defect
    }

    /// Generates the train/test datasets (pre-injection). Exposed so
    /// benches can reuse the data without rerunning training.
    pub fn generate_data(&self) -> (Dataset, Dataset) {
        let cfg = &self.cfg;
        let mut data_rng = stream_rng(cfg.seed, "scenario-data");
        match cfg.dataset {
            DatasetKind::Digits => {
                let gen = SynthDigits::new();
                let train = gen.generate(cfg.train_per_class, &mut data_rng);
                let test = gen.generate(cfg.test_per_class, &mut data_rng);
                (train, test)
            }
            DatasetKind::Objects => {
                let gen = SynthObjects::new();
                let train = gen.generate(cfg.train_per_class, &mut data_rng);
                let test = gen.generate(cfg.test_per_class, &mut data_rng);
                (train, test)
            }
        }
    }

    /// Builds and trains a fresh model on `train`, optionally overriding
    /// the structure-defect severity, using seed streams suffixed with
    /// `stream` so repair retraining is independent of the original run.
    fn train_fresh(
        &self,
        train: &Dataset,
        removed_convs: usize,
        stream: &str,
    ) -> Result<(deepmorph_models::ModelHandle, f32)> {
        let cfg = &self.cfg;
        let input_shape = [
            cfg.dataset.channels(),
            cfg.dataset.side(),
            cfg.dataset.side(),
        ];
        let spec = ModelSpec::new(
            cfg.family,
            cfg.scale,
            input_shape,
            cfg.dataset.num_classes(),
        )
        .with_removed_convs(removed_convs);
        let mut model_rng = stream_rng(cfg.seed, &format!("scenario-model{stream}"));
        let mut model = build_model(&spec, &mut model_rng)?;
        let mut train_rng = stream_rng(cfg.seed, &format!("scenario-train{stream}"));
        let mut trainer = Trainer::new(cfg.train_config.clone());
        let report = trainer.fit(
            &mut model.graph,
            train.images(),
            train.labels(),
            &mut train_rng,
        )?;
        Ok((model, report.final_train_accuracy))
    }

    /// Runs the full protocol: generate → inject → train → collect faulty
    /// cases → diagnose.
    ///
    /// # Errors
    ///
    /// Returns [`DeepMorphError::NoFaultyCases`] if the trained model is
    /// perfect on the test set (pick a harder defect or fewer epochs), and
    /// propagates all pipeline errors.
    pub fn run(&self) -> Result<ScenarioOutcome> {
        self.execute().map(|e| e.outcome)
    }

    fn execute(&self) -> Result<Executed> {
        let cfg = &self.cfg;
        let (clean_train, test) = self.generate_data();

        // Injection (data side).
        let mut inject_rng = stream_rng(cfg.seed, "scenario-inject");
        let train = cfg.defect.apply_to_dataset(&clean_train, &mut inject_rng);
        if train.is_empty() {
            return Err(DeepMorphError::InvalidScenario {
                reason: "injection removed the entire training set".into(),
            });
        }

        // Model (structure side) + training.
        let removed = match &cfg.defect {
            DefectSpec::Sd { removed_convs } => *removed_convs,
            _ => 0,
        };
        let (mut model, train_accuracy) = self.train_fresh(&train, removed, "")?;
        let test_accuracy = evaluate_accuracy(&mut model.graph, test.images(), test.labels(), 64)?;

        // Faulty cases from the clean test set.
        let faulty = FaultyCases::collect(&mut model, &test)?;
        let faulty_count = faulty.len();

        let subject = format!(
            "{} on {}, defect {}",
            cfg.family,
            cfg.dataset,
            cfg.defect.describe()
        );
        let tool = DeepMorph::new(cfg.deepmorph);
        let (report, instrumented) = tool.diagnose(model, &train, &faulty, &subject)?;

        Ok(Executed {
            outcome: ScenarioOutcome {
                report,
                test_accuracy,
                train_accuracy,
                faulty_count,
                defect: cfg.defect.clone(),
                subject,
            },
            instrumented,
            train,
            test,
        })
    }

    /// Runs the protocol, then applies DeepMorph's recommended repair and
    /// retrains, measuring the accuracy improvement — the paper's
    /// "modify the models accordingly" evaluation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scenario::run`], plus
    /// [`DeepMorphError::InvalidScenario`] when no repair can be derived
    /// from the report.
    pub fn run_with_repair(&self) -> Result<(ScenarioOutcome, RepairOutcome)> {
        let cfg = &self.cfg;
        let mut executed = self.execute()?;
        let plan =
            recommend(&executed.outcome.report).ok_or_else(|| DeepMorphError::InvalidScenario {
                reason: "no repair plan can be derived from the report".into(),
            })?;

        let repaired_train: Dataset = match &plan {
            RepairPlan::CollectMoreData { classes } => {
                // Simulate collecting more data: draw fresh samples of the
                // starved classes from the generator.
                let mut rng = stream_rng(cfg.seed, "scenario-repair-data");
                let extra = self.generate_for_classes(classes, cfg.train_per_class, &mut rng);
                executed.train.concat(&extra)?
            }
            RepairPlan::CleanLabels {
                suspect_label,
                executes_as,
            } => {
                // Relabel training samples that carry the suspect label but
                // execute as the other class of the pair.
                let fps = executed.instrumented.footprints(executed.train.images())?;
                let mut cleaned = executed.train.clone();
                for (i, fp) in fps.iter().enumerate() {
                    if cleaned.labels()[i] == *suspect_label {
                        let probe_class = deepmorph_tensor::stats::argmax(fp.last());
                        if probe_class == *executes_as {
                            cleaned.set_label(i, *executes_as);
                        }
                    }
                }
                cleaned
            }
            RepairPlan::StrengthenStructure => executed.train.clone(),
        };

        let (mut repaired_model, _) = self.train_fresh(&repaired_train, 0, "-repair")?;
        let accuracy_after = evaluate_accuracy(
            &mut repaired_model.graph,
            executed.test.images(),
            executed.test.labels(),
            64,
        )?;
        let repair = RepairOutcome {
            plan,
            accuracy_before: executed.outcome.test_accuracy,
            accuracy_after,
            repaired_train_size: repaired_train.len(),
        };
        Ok((executed.outcome, repair))
    }

    /// Generates `per_class` fresh samples for each class in `classes`.
    fn generate_for_classes(
        &self,
        classes: &[usize],
        per_class: usize,
        rng: &mut rand_chacha::ChaCha8Rng,
    ) -> Dataset {
        let k = self.cfg.dataset.num_classes();
        let [c, h, w] = [
            self.cfg.dataset.channels(),
            self.cfg.dataset.side(),
            self.cfg.dataset.side(),
        ];
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for &class in classes {
            for _ in 0..per_class {
                let img = match self.cfg.dataset {
                    DatasetKind::Digits => SynthDigits::new().sample(class, rng),
                    DatasetKind::Objects => SynthObjects::new().sample(class, rng),
                };
                data.extend_from_slice(img.data());
                labels.push(class);
            }
        }
        let n = labels.len();
        Dataset::new(
            deepmorph_tensor::Tensor::from_vec(data, &[n, c, h, w])
                .expect("generator shape consistent"),
            labels,
            k,
        )
        .expect("labels consistent")
    }
}

/// Internal result of a full pipeline execution.
struct Executed {
    outcome: ScenarioOutcome,
    instrumented: InstrumentedModel,
    train: Dataset,
    test: Dataset,
}

/// The effect of applying DeepMorph's recommended repair.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairOutcome {
    /// The repair that was applied.
    pub plan: RepairPlan,
    /// Clean-test accuracy of the defective model.
    pub accuracy_before: f32,
    /// Clean-test accuracy after the repair + retraining.
    pub accuracy_after: f32,
    /// Training-set size after the repair.
    pub repaired_train_size: usize,
}

impl RepairOutcome {
    /// Absolute accuracy improvement from the repair.
    pub fn improvement(&self) -> f32 {
        self.accuracy_after - self.accuracy_before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates() {
        assert!(Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
            .train_per_class(0)
            .build()
            .is_err());
        assert!(Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
            .build()
            .is_ok());
    }

    #[test]
    fn generate_data_shapes_match_kind() {
        let s = Scenario::builder(ModelFamily::ResNet, DatasetKind::Objects)
            .train_per_class(2)
            .test_per_class(1)
            .build()
            .unwrap();
        let (train, test) = s.generate_data();
        assert_eq!(train.image_shape(), [3, 16, 16]);
        assert_eq!(train.len(), 20);
        assert_eq!(test.len(), 10);
    }

    // Full end-to-end runs live in tests/ (they train real models and are
    // too slow for unit tests).
}
