//! End-to-end experiment scenarios.
//!
//! A [`Scenario`] packages the paper's Section IV protocol: generate a
//! dataset, inject a defect, train the (possibly defective) model, collect
//! the faulty cases from the clean test set, and run DeepMorph. Execution
//! goes through the staged engine ([`crate::stage::StagedEngine`]): a
//! plain [`Scenario::run`] drives the stages with a disabled artifact
//! store, while sweeps ([`crate::sweep::SweepRunner`]) share a real store
//! so unchanged stages are loaded instead of recomputed. The examples and
//! the Table I harness are thin wrappers around this type.

use deepmorph_data::{DataGenerator, Dataset, DatasetKind, SynthDigits, SynthObjects};
use deepmorph_defects::DefectSpec;
use deepmorph_models::{build_model, ModelFamily, ModelScale, ModelSpec};
use deepmorph_nn::prelude::{TrainConfig, Trainer};
use deepmorph_tensor::init::stream_rng;

use crate::artifact::Fingerprint;
use crate::pipeline::DeepMorphConfig;
use crate::repair::RepairPlan;
use crate::report::DefectReport;
use crate::stage::StagedEngine;
use crate::{DeepMorphError, Result};

/// Builder for [`Scenario`].
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    pub(crate) family: ModelFamily,
    pub(crate) dataset: DatasetKind,
    pub(crate) seed: u64,
    pub(crate) scale: ModelScale,
    pub(crate) defect: DefectSpec,
    pub(crate) train_per_class: usize,
    pub(crate) test_per_class: usize,
    pub(crate) train_config: TrainConfig,
    pub(crate) deepmorph: DeepMorphConfig,
}

impl ScenarioBuilder {
    fn new(family: ModelFamily, dataset: DatasetKind) -> Self {
        ScenarioBuilder {
            family,
            dataset,
            seed: 0,
            scale: ModelScale::Tiny,
            defect: DefectSpec::Healthy,
            train_per_class: 100,
            test_per_class: 30,
            train_config: TrainConfig {
                epochs: 4,
                batch_size: 32,
                learning_rate: 0.05,
                ..TrainConfig::default()
            },
            deepmorph: DeepMorphConfig {
                max_faulty_cases: 200,
                ..DeepMorphConfig::default()
            },
        }
    }

    /// Sets the base seed controlling data, weights, and injection.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the model scale.
    pub fn scale(mut self, scale: ModelScale) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the defect to inject.
    pub fn inject(mut self, defect: DefectSpec) -> Self {
        self.defect = defect;
        self
    }

    /// Sets training samples generated per class (before injection).
    pub fn train_per_class(mut self, n: usize) -> Self {
        self.train_per_class = n;
        self
    }

    /// Sets test samples generated per class.
    pub fn test_per_class(mut self, n: usize) -> Self {
        self.test_per_class = n;
        self
    }

    /// Overrides the backbone training configuration.
    pub fn train_config(mut self, config: TrainConfig) -> Self {
        self.train_config = config;
        self
    }

    /// Overrides the DeepMorph configuration.
    pub fn deepmorph_config(mut self, config: DeepMorphConfig) -> Self {
        self.deepmorph = config;
        self
    }

    /// Validates and finalizes the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`DeepMorphError::InvalidScenario`] for empty datasets or a
    /// channel mismatch between dataset kind and model input.
    pub fn build(self) -> Result<Scenario> {
        if self.train_per_class == 0 || self.test_per_class == 0 {
            return Err(DeepMorphError::InvalidScenario {
                reason: "train_per_class and test_per_class must be positive".into(),
            });
        }
        Ok(Scenario { cfg: self })
    }
}

/// A fully-specified experiment: dataset × model × defect × seeds.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub(crate) cfg: ScenarioBuilder,
}

/// Everything a finished scenario produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioOutcome {
    /// The DeepMorph diagnosis.
    pub report: DefectReport,
    /// Accuracy of the trained (defective) model on the clean test set.
    pub test_accuracy: f32,
    /// Accuracy on its own (injected) training set.
    pub train_accuracy: f32,
    /// Number of faulty cases found on the test set (before capping).
    pub faulty_count: usize,
    /// The injected defect.
    pub defect: DefectSpec,
    /// Human-readable subject line ("LeNet on synth-digits, ITD(…)").
    pub subject: String,
}

impl Scenario {
    /// Starts building a scenario for a model family on a dataset kind.
    pub fn builder(family: ModelFamily, dataset: DatasetKind) -> ScenarioBuilder {
        ScenarioBuilder::new(family, dataset)
    }

    /// The configured defect.
    pub fn defect(&self) -> &DefectSpec {
        &self.cfg.defect
    }

    /// The model family under test.
    pub fn family(&self) -> ModelFamily {
        self.cfg.family
    }

    /// The dataset kind under test.
    pub fn dataset(&self) -> DatasetKind {
        self.cfg.dataset
    }

    /// The base seed.
    pub fn seed(&self) -> u64 {
        self.cfg.seed
    }

    /// Human-readable subject line used in reports.
    pub fn subject(&self) -> String {
        let cfg = &self.cfg;
        format!(
            "{} on {}, defect {}",
            cfg.family,
            cfg.dataset,
            cfg.defect.describe()
        )
    }

    /// The same scenario with the defect replaced by
    /// [`DefectSpec::Healthy`] — the shared "base" cell of a severity
    /// sweep. Every severity point of a sweep has the same healthy twin,
    /// so its training stage is fingerprint-shared across the whole sweep.
    pub fn healthy_twin(&self) -> Scenario {
        let mut cfg = self.cfg.clone();
        cfg.defect = DefectSpec::Healthy;
        Scenario { cfg }
    }

    /// Content fingerprint of *all* scenario inputs (family, scale,
    /// dataset, seeds, defect spec, training and DeepMorph configuration).
    /// Scenarios with equal fingerprints produce bitwise-identical
    /// reports; this is the identity the artifact store caches under.
    pub fn fingerprint(&self) -> Fingerprint {
        StagedEngine::report_fingerprint(self)
    }

    /// Generates the train/test datasets (pre-injection). Exposed so
    /// benches can reuse the data without rerunning training.
    pub fn generate_data(&self) -> (Dataset, Dataset) {
        let cfg = &self.cfg;
        let mut data_rng = stream_rng(cfg.seed, "scenario-data");
        match cfg.dataset {
            DatasetKind::Digits => {
                let gen = SynthDigits::new();
                let train = gen.generate(cfg.train_per_class, &mut data_rng);
                let test = gen.generate(cfg.test_per_class, &mut data_rng);
                (train, test)
            }
            DatasetKind::Objects => {
                let gen = SynthObjects::new();
                let train = gen.generate(cfg.train_per_class, &mut data_rng);
                let test = gen.generate(cfg.test_per_class, &mut data_rng);
                (train, test)
            }
        }
    }

    /// Generates the datasets and applies the data-side injection:
    /// `(injected_train, clean_test)`. The injected train set is the
    /// model's *actual* training data — what live diagnosis learns
    /// patterns from and what a repair modifies; the clean test set
    /// doubles as the held-out set repair gating evaluates on.
    ///
    /// # Errors
    ///
    /// Returns [`DeepMorphError::InvalidScenario`] if injection removed
    /// the entire training set.
    pub fn injected_data(&self) -> Result<(Dataset, Dataset)> {
        let cfg = &self.cfg;
        let (clean_train, test) = self.generate_data();
        let mut inject_rng = stream_rng(cfg.seed, "scenario-inject");
        let train = cfg.defect.apply_to_dataset(&clean_train, &mut inject_rng)?;
        if train.is_empty() {
            return Err(DeepMorphError::InvalidScenario {
                reason: "injection removed the entire training set".into(),
            });
        }
        Ok((train, test))
    }

    /// Builds and trains a fresh model on `train`, optionally overriding
    /// the structure-defect severity, using seed streams suffixed with
    /// `stream` so repair retraining is independent of the original run.
    pub(crate) fn train_fresh(
        &self,
        train: &Dataset,
        removed_convs: usize,
        stream: &str,
    ) -> Result<(deepmorph_models::ModelHandle, f32)> {
        let cfg = &self.cfg;
        let input_shape = [
            cfg.dataset.channels(),
            cfg.dataset.side(),
            cfg.dataset.side(),
        ];
        let spec = ModelSpec::new(
            cfg.family,
            cfg.scale,
            input_shape,
            cfg.dataset.num_classes(),
        )
        .with_removed_convs(removed_convs);
        let mut model_rng = stream_rng(cfg.seed, &format!("scenario-model{stream}"));
        let mut model = build_model(&spec, &mut model_rng)?;
        let mut train_rng = stream_rng(cfg.seed, &format!("scenario-train{stream}"));
        let mut trainer = Trainer::new(cfg.train_config.clone());
        let report = trainer.fit(
            &mut model.graph,
            train.images(),
            train.labels(),
            &mut train_rng,
        )?;
        Ok((model, report.final_train_accuracy))
    }

    /// Runs the full protocol: generate → inject → train → collect faulty
    /// cases → diagnose.
    ///
    /// Equivalent to driving the staged engine with a disabled artifact
    /// store; use [`StagedEngine::run`] with a real store to cache and
    /// reuse stages across scenarios.
    ///
    /// # Errors
    ///
    /// Returns [`DeepMorphError::NoFaultyCases`] if the trained model is
    /// perfect on the test set (pick a harder defect or fewer epochs), and
    /// propagates all pipeline errors.
    pub fn run(&self) -> Result<ScenarioOutcome> {
        StagedEngine::ephemeral().run(self)
    }

    /// Runs the protocol, then applies DeepMorph's recommended repair and
    /// retrains, measuring the accuracy improvement — the paper's
    /// "modify the models accordingly" evaluation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Scenario::run`], plus
    /// [`DeepMorphError::InvalidScenario`] when no repair can be derived
    /// from the report.
    pub fn run_with_repair(&self) -> Result<(ScenarioOutcome, RepairOutcome)> {
        StagedEngine::ephemeral().run_with_repair(self)
    }

    /// Generates `per_class` fresh samples for each class in `classes`.
    pub(crate) fn generate_for_classes(
        &self,
        classes: &[usize],
        per_class: usize,
        rng: &mut rand_chacha::ChaCha8Rng,
    ) -> Dataset {
        let k = self.cfg.dataset.num_classes();
        let [c, h, w] = [
            self.cfg.dataset.channels(),
            self.cfg.dataset.side(),
            self.cfg.dataset.side(),
        ];
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for &class in classes {
            for _ in 0..per_class {
                let img = match self.cfg.dataset {
                    DatasetKind::Digits => SynthDigits::new().sample(class, rng),
                    DatasetKind::Objects => SynthObjects::new().sample(class, rng),
                };
                data.extend_from_slice(img.data());
                labels.push(class);
            }
        }
        let n = labels.len();
        Dataset::new(
            deepmorph_tensor::Tensor::from_vec(data, &[n, c, h, w])
                .expect("generator shape consistent"),
            labels,
            k,
        )
        .expect("labels consistent")
    }
}

/// The effect of applying DeepMorph's recommended repair.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairOutcome {
    /// The repair that was applied.
    pub plan: RepairPlan,
    /// Clean-test accuracy of the defective model.
    pub accuracy_before: f32,
    /// Clean-test accuracy after the repair + retraining.
    pub accuracy_after: f32,
    /// Training-set size after the repair.
    pub repaired_train_size: usize,
}

impl RepairOutcome {
    /// Absolute accuracy improvement from the repair.
    pub fn improvement(&self) -> f32 {
        self.accuracy_after - self.accuracy_before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates() {
        assert!(Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
            .train_per_class(0)
            .build()
            .is_err());
        assert!(Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
            .build()
            .is_ok());
    }

    #[test]
    fn generate_data_shapes_match_kind() {
        let s = Scenario::builder(ModelFamily::ResNet, DatasetKind::Objects)
            .train_per_class(2)
            .test_per_class(1)
            .build()
            .unwrap();
        let (train, test) = s.generate_data();
        assert_eq!(train.image_shape(), [3, 16, 16]);
        assert_eq!(train.len(), 20);
        assert_eq!(test.len(), 10);
    }

    #[test]
    fn fingerprint_tracks_every_input() {
        let base = || {
            Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
                .seed(3)
                .train_per_class(10)
                .test_per_class(5)
        };
        let a = base().build().unwrap();
        assert_eq!(a.fingerprint(), base().build().unwrap().fingerprint());
        assert_ne!(
            a.fingerprint(),
            base().seed(4).build().unwrap().fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            base()
                .inject(DefectSpec::structure_defect(1))
                .build()
                .unwrap()
                .fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            base().train_per_class(11).build().unwrap().fingerprint()
        );
        assert_ne!(
            a.fingerprint(),
            base()
                .scale(ModelScale::Small)
                .build()
                .unwrap()
                .fingerprint()
        );
    }

    #[test]
    fn healthy_twin_is_severity_invariant() {
        let mk = |fraction| {
            Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
                .seed(5)
                .inject(DefectSpec::unreliable_training_data(3, 5, fraction))
                .build()
                .unwrap()
        };
        let a = mk(0.2);
        let b = mk(0.8);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(
            a.healthy_twin().fingerprint(),
            b.healthy_twin().fingerprint()
        );
        assert!(matches!(a.healthy_twin().defect(), DefectSpec::Healthy));
    }

    // Full end-to-end runs live in tests/ (they train real models and are
    // too slow for unit tests).
}
