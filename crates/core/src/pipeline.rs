//! The end-to-end DeepMorph pipeline.

use deepmorph_tensor::{workspace, Tensor};

use deepmorph_data::Dataset;
use deepmorph_models::ModelHandle;
use deepmorph_nn::train::{gather_batch, predict_all};

use crate::classify::{ClassifierConfig, DefectClassifier};
use crate::instrument::{InstrumentedModel, ProbeTrainingConfig};
use crate::pattern::ClassPatterns;
use crate::report::{CaseDiagnosis, DefectRatios, DefectReport};
use crate::specifics::FootprintSpecifics;
use crate::{DeepMorphError, Result};

/// Configuration of a DeepMorph run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DeepMorphConfig {
    /// Auxiliary-probe training hyper-parameters.
    pub probe: ProbeTrainingConfig,
    /// Defect-classifier configuration.
    pub classifier: ClassifierConfig,
    /// Cap on the number of faulty cases analyzed (0 = no cap). Footprint
    /// extraction is linear in this; 200 is plenty for stable ratios.
    pub max_faulty_cases: usize,
}

/// The misclassified test inputs handed to DeepMorph, with their labels
/// and the model's predictions.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultyCases {
    /// The misclassified inputs, `[n, c, h, w]`.
    pub images: Tensor,
    /// Ground-truth labels.
    pub true_labels: Vec<usize>,
    /// The model's (wrong) predictions.
    pub predicted: Vec<usize>,
}

impl FaultyCases {
    /// Runs `model` over `test` and collects every misclassified sample.
    ///
    /// # Errors
    ///
    /// Propagates network errors.
    pub fn collect(model: &mut ModelHandle, test: &Dataset) -> Result<Self> {
        Ok(FaultyCases::collect_capped(model, test, 0)?.0)
    }

    /// Like [`FaultyCases::collect`], but keeps only the first `max`
    /// misclassified samples (`0` = no cap). The cap is applied to the
    /// *index list*, before any image is gathered, so a capped run never
    /// materializes the full faulty batch only to truncate it. Returns the
    /// capped cases together with the total (pre-cap) faulty count.
    ///
    /// The kept cases are the prefix of the test-order faulty list —
    /// identical to `collect` + [`FaultyCases::truncate`], bit for bit.
    ///
    /// # Errors
    ///
    /// Propagates network errors.
    pub fn collect_capped(
        model: &mut ModelHandle,
        test: &Dataset,
        max: usize,
    ) -> Result<(Self, usize)> {
        let preds = predict_all(&mut model.graph, test.images(), 64)?;
        let mut faulty: Vec<usize> = preds
            .iter()
            .zip(test.labels())
            .enumerate()
            .filter(|(_, (p, l))| p != l)
            .map(|(i, _)| i)
            .collect();
        let total = faulty.len();
        if max > 0 {
            faulty.truncate(max);
        }
        let images = gather_batch(test.images(), &faulty)?;
        Ok((
            FaultyCases {
                images,
                true_labels: faulty.iter().map(|&i| test.labels()[i]).collect(),
                predicted: faulty.iter().map(|&i| preds[i]).collect(),
            },
            total,
        ))
    }

    /// Number of faulty cases.
    pub fn len(&self) -> usize {
        self.true_labels.len()
    }

    /// `true` if the model made no mistakes on the test set.
    pub fn is_empty(&self) -> bool {
        self.true_labels.is_empty()
    }

    /// Keeps only the first `max` cases (no-op if `max == 0` or already
    /// smaller).
    ///
    /// # Errors
    ///
    /// Propagates tensor errors.
    pub fn truncate(&mut self, max: usize) -> Result<()> {
        if max == 0 || self.len() <= max {
            return Ok(());
        }
        let keep: Vec<usize> = (0..max).collect();
        let trimmed = gather_batch(&self.images, &keep)?;
        workspace::recycle_tensor(std::mem::replace(&mut self.images, trimmed));
        self.true_labels.truncate(max);
        self.predicted.truncate(max);
        Ok(())
    }
}

/// The DeepMorph tool: instruments a model, learns execution patterns, and
/// attributes faulty cases to defect types.
#[derive(Debug, Clone, Default)]
pub struct DeepMorph {
    config: DeepMorphConfig,
}

impl DeepMorph {
    /// Creates the tool with the given configuration.
    pub fn new(config: DeepMorphConfig) -> Self {
        DeepMorph { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &DeepMorphConfig {
        &self.config
    }

    /// The expensive, faulty-case-independent half of diagnosis: builds
    /// the softmax-instrumented model and learns the class execution
    /// patterns from the training set. The returned [`DiagnosisSession`]
    /// can then diagnose any number of faulty-case sets against the same
    /// model cheaply — this is what lets a serving process instrument a
    /// deployed model once and re-diagnose fresh traffic on every request.
    ///
    /// # Errors
    ///
    /// Propagates instrumentation/network errors.
    pub fn prepare(&self, model: ModelHandle, train: &Dataset) -> Result<DiagnosisSession> {
        // Stratified fit/holdout split: probes are fitted on `fit`, while
        // the label-noise statistics come from `holdout` so backbone
        // memorization cannot erase the UTD fingerprint (see
        // `ClassPatterns::learn_with_holdout`). Tiny training sets skip
        // the split.
        let mut split_rng =
            deepmorph_tensor::init::stream_rng(self.config.probe.seed, "holdout-split");
        let use_holdout = train.len() >= 10 * train.num_classes();
        let (fit, holdout) = if use_holdout {
            train.split_stratified(0.85, &mut split_rng)
        } else {
            (train.clone(), train.clone())
        };

        // 1. Softmax-instrumented model.
        let mut instrumented = InstrumentedModel::build(
            model,
            fit.images(),
            fit.labels(),
            train.num_classes(),
            &self.config.probe,
        )?;

        // 2. Execution patterns from training footprints, noise statistics
        //    from the holdout.
        let train_fps = instrumented.footprints(fit.images())?;
        let patterns = if use_holdout {
            let holdout_fps = instrumented.footprints(holdout.images())?;
            ClassPatterns::learn_with_holdout(
                &train_fps,
                fit.labels(),
                &holdout_fps,
                holdout.labels(),
                instrumented.probe_accuracies(),
            )?
        } else {
            ClassPatterns::learn(&train_fps, fit.labels(), instrumented.probe_accuracies())?
        };

        Ok(DiagnosisSession {
            instrumented,
            patterns,
            probe_labels: train_fps.probe_labels().to_vec(),
            config: self.config,
        })
    }

    /// Runs the full diagnosis pipeline.
    ///
    /// Consumes the model (instrumentation wraps it); returns the report
    /// and the instrumented model for further queries. Equivalent to
    /// [`DeepMorph::prepare`] followed by one
    /// [`DiagnosisSession::diagnose`], bit for bit.
    ///
    /// # Errors
    ///
    /// Returns [`DeepMorphError::NoFaultyCases`] if `faulty` is empty, and
    /// propagates instrumentation/network errors.
    pub fn diagnose(
        &self,
        model: ModelHandle,
        train: &Dataset,
        faulty: &FaultyCases,
        subject: &str,
    ) -> Result<(DefectReport, InstrumentedModel)> {
        if faulty.is_empty() {
            return Err(DeepMorphError::NoFaultyCases);
        }
        let mut session = self.prepare(model, train)?;
        let report = session.diagnose(faulty, subject)?;
        Ok((report, session.into_instrumented()))
    }
}

/// A prepared diagnosis: an instrumented model plus its learned class
/// patterns. Created by [`DeepMorph::prepare`]; each
/// [`DiagnosisSession::diagnose`] call then only extracts the faulty
/// cases' footprints and classifies them — orders of magnitude cheaper
/// than re-training probes, which is what makes repeated live diagnosis
/// of the same deployed model practical.
#[derive(Debug)]
pub struct DiagnosisSession {
    instrumented: InstrumentedModel,
    patterns: ClassPatterns,
    probe_labels: Vec<String>,
    config: DeepMorphConfig,
}

impl DiagnosisSession {
    /// Diagnoses one set of faulty cases against the prepared patterns.
    ///
    /// # Errors
    ///
    /// Returns [`DeepMorphError::NoFaultyCases`] if `faulty` is empty, and
    /// propagates network errors.
    pub fn diagnose(&mut self, faulty: &FaultyCases, subject: &str) -> Result<DefectReport> {
        if faulty.is_empty() {
            return Err(DeepMorphError::NoFaultyCases);
        }
        let mut faulty = faulty.clone();
        faulty.truncate(self.config.max_faulty_cases)?;

        // 3. Faulty-case footprints → specifics.
        let faulty_fps = self.instrumented.footprints(&faulty.images)?;
        let specifics: Vec<FootprintSpecifics> = faulty_fps
            .iter()
            .zip(faulty.true_labels.iter().zip(&faulty.predicted))
            .map(|(fp, (&t, &p))| {
                FootprintSpecifics::compute(fp, t, p, &self.patterns, self.config.classifier.metric)
            })
            .collect();

        // 4. Defect reasoning.
        let classifier = DefectClassifier::new(self.config.classifier);
        let (scores, ratios) = classifier.classify(&specifics, &self.patterns);

        let cases = scores
            .iter()
            .enumerate()
            .map(|(i, s)| CaseDiagnosis {
                case_index: i,
                true_label: faulty.true_labels[i],
                predicted: faulty.predicted[i],
                assigned: s.assigned().abbrev().to_string(),
                score_distribution: s.distribution(),
            })
            .collect();

        Ok(DefectReport {
            ratios: DefectRatios::new(ratios),
            num_cases: specifics.len(),
            probe_labels: self.probe_labels.clone(),
            probe_accuracies: self.instrumented.probe_accuracies(),
            model_health: self.patterns.health(),
            cases,
            subject: subject.to_string(),
        })
    }

    /// The instrumented model (e.g. for UTD label-cleaning footprints).
    pub fn instrumented_mut(&mut self) -> &mut InstrumentedModel {
        &mut self.instrumented
    }

    /// Unwraps the session into its instrumented model.
    pub fn into_instrumented(self) -> InstrumentedModel {
        self.instrumented
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmorph_models::{build_model, ModelFamily, ModelScale, ModelSpec};
    use deepmorph_tensor::init::stream_rng;

    fn toy_dataset(per_class: usize) -> Dataset {
        // Class-dependent constant images: trivially learnable by probes.
        let k = 4;
        let n = per_class * k;
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for c in 0..k {
            for s in 0..per_class {
                let level = c as f32 / k as f32 + (s % 3) as f32 * 0.01;
                data.extend(std::iter::repeat_n(level, 256));
                labels.push(c);
            }
        }
        Dataset::new(Tensor::from_vec(data, &[n, 1, 16, 16]).unwrap(), labels, k).unwrap()
    }

    #[test]
    fn collect_finds_misclassifications() {
        let spec = ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [1, 16, 16], 4);
        let mut rng = stream_rng(1, "pipeline");
        let mut model = build_model(&spec, &mut rng).unwrap();
        let test = toy_dataset(5);
        // Untrained model: most predictions are wrong.
        let faulty = FaultyCases::collect(&mut model, &test).unwrap();
        assert!(!faulty.is_empty());
        assert_eq!(faulty.images.shape()[0], faulty.len());
        for (t, p) in faulty.true_labels.iter().zip(&faulty.predicted) {
            assert_ne!(t, p);
        }
    }

    #[test]
    fn truncate_caps_cases() {
        let spec = ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [1, 16, 16], 4);
        let mut rng = stream_rng(2, "pipeline");
        let mut model = build_model(&spec, &mut rng).unwrap();
        let test = toy_dataset(5);
        let mut faulty = FaultyCases::collect(&mut model, &test).unwrap();
        faulty.truncate(3).unwrap();
        assert!(faulty.len() <= 3);
        assert_eq!(faulty.images.shape()[0], faulty.len());
    }

    #[test]
    fn diagnose_produces_wellformed_report() {
        let spec = ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [1, 16, 16], 4);
        let mut rng = stream_rng(3, "pipeline");
        let mut model = build_model(&spec, &mut rng).unwrap();
        let train = toy_dataset(10);
        let test = toy_dataset(4);
        let faulty = FaultyCases::collect(&mut model, &test).unwrap();
        assert!(!faulty.is_empty());

        let tool = DeepMorph::new(DeepMorphConfig {
            probe: ProbeTrainingConfig {
                epochs: 5,
                ..Default::default()
            },
            max_faulty_cases: 10,
            ..Default::default()
        });
        let (report, _instrumented) = tool.diagnose(model, &train, &faulty, "LeNet toy").unwrap();
        assert!(report.num_cases > 0 && report.num_cases <= 10);
        let sum: f32 = report.ratios.as_array().iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
        assert_eq!(report.cases.len(), report.num_cases);
        assert_eq!(report.probe_labels.len(), report.probe_accuracies.len());
    }

    #[test]
    fn diagnose_rejects_empty_faulty_set() {
        let spec = ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [1, 16, 16], 4);
        let mut rng = stream_rng(4, "pipeline");
        let model = build_model(&spec, &mut rng).unwrap();
        let train = toy_dataset(4);
        let faulty = FaultyCases {
            images: Tensor::zeros(&[0, 1, 16, 16]),
            true_labels: vec![],
            predicted: vec![],
        };
        let tool = DeepMorph::default();
        assert!(matches!(
            tool.diagnose(model, &train, &faulty, "x").unwrap_err(),
            DeepMorphError::NoFaultyCases
        ));
    }
}
