//! Content-addressed artifact storage for the staged scenario engine.
//!
//! Every stage of the staged pipeline (see [`crate::stage`]) is keyed by a
//! [`Fingerprint`]: a 128-bit content hash of *all* inputs that influence
//! the stage's output — scenario configuration, defect spec, seeds, and
//! the fingerprint of the upstream stage. Two scenarios that agree on a
//! stage's inputs share that stage's fingerprint, so a sweep that varies
//! only the defect severity reuses the stages whose inputs are unchanged
//! and recomputes the rest; rerunning an identical experiment costs only
//! store reads.
//!
//! The [`ArtifactStore`] maps fingerprints to artifact bytes. Three
//! backends:
//!
//! * **disabled** — every lookup misses, writes are dropped. This is what
//!   [`Scenario::run`](crate::scenario::Scenario::run) uses, so one-off
//!   runs have no filesystem footprint.
//! * **memory** — a process-local map, for tests and short sweeps.
//! * **disk** — one file per fingerprint under a root directory
//!   (`DEEPMORPH_ARTIFACTS` env var, default `./artifacts`). Writes go
//!   through a temp file + rename, so concurrent sweep cells racing on
//!   the same fingerprint can never expose a half-written artifact.
//!
//! Hit/miss/write counters are shared across clones of the handle and are
//! how the sweep tests prove cache reuse (e.g. "the base training ran
//! once").

use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use deepmorph_tensor::io::ByteWriter;

/// Environment variable overriding the default on-disk store location.
pub const ARTIFACTS_ENV: &str = "DEEPMORPH_ARTIFACTS";

/// Second FNV basis for the high fingerprint half (two independent
/// 64-bit digests over the same bytes form the 128-bit identity).
const FP_HI_BASIS: u64 = 0x6c62_272e_07bb_0142;

/// 128-bit content fingerprint of an opaque byte blob, as 32 hex chars —
/// the identity under which model containers are tracked (the serving
/// registry stamps every model version with it, and the repair stage keys
/// its cache by it).
pub fn content_fingerprint(bytes: &[u8]) -> String {
    use deepmorph_tensor::io::{fnv64, fnv64_seeded};
    format!(
        "{:016x}{:016x}",
        fnv64_seeded(FP_HI_BASIS, bytes),
        fnv64(bytes)
    )
}

/// Default on-disk store directory (relative to the working directory).
pub const DEFAULT_ARTIFACTS_DIR: &str = "artifacts";

/// A 128-bit content hash identifying one stage output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    lo: u64,
    hi: u64,
}

impl Fingerprint {
    /// The fingerprint as a fixed-width hex string (the store key).
    pub fn as_hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.as_hex())
    }
}

/// Accumulates the inputs of one stage into a [`Fingerprint`].
///
/// Push every value that can influence the stage's output; the encoding is
/// length-prefixed where variable-sized, so distinct input sequences can
/// not collide by concatenation.
#[derive(Debug, Default)]
pub struct Fingerprinter {
    w: ByteWriter,
}

impl Fingerprinter {
    /// Starts a fingerprint with a domain label (stage name + version).
    pub fn new(domain: &str) -> Self {
        let mut fp = Fingerprinter {
            w: ByteWriter::new(),
        };
        fp.push_str(domain);
        fp
    }

    /// Mixes in a string.
    pub fn push_str(&mut self, s: &str) {
        self.w.put_str(s);
    }

    /// Mixes in an integer.
    pub fn push_u64(&mut self, v: u64) {
        self.w.put_u64(v);
    }

    /// Mixes in a `usize`.
    pub fn push_usize(&mut self, v: usize) {
        self.w.put_u64(v as u64);
    }

    /// Mixes in a boolean.
    pub fn push_bool(&mut self, v: bool) {
        self.w.put_u8(u8::from(v));
    }

    /// Mixes in an `f32` by its exact bit pattern.
    pub fn push_f32(&mut self, v: f32) {
        self.w.put_u64(u64::from(v.to_bits()));
    }

    /// Mixes in an upstream stage's fingerprint.
    pub fn push_fingerprint(&mut self, fp: &Fingerprint) {
        self.w.put_u64(fp.lo);
        self.w.put_u64(fp.hi);
    }

    /// Finalizes the fingerprint.
    pub fn finish(self) -> Fingerprint {
        use deepmorph_tensor::io::{fnv64, fnv64_seeded};
        let bytes = self.w.as_slice();
        Fingerprint {
            lo: fnv64(bytes),
            hi: fnv64_seeded(FP_HI_BASIS, bytes),
        }
    }
}

/// Immutable snapshot of the store counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreStats {
    /// Lookups that returned a stored artifact.
    pub hits: u64,
    /// Lookups that found nothing (or an undecodable artifact).
    pub misses: u64,
    /// Artifacts persisted.
    pub writes: u64,
}

impl StoreStats {
    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &StoreStats) -> StoreStats {
        StoreStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            writes: self.writes - earlier.writes,
        }
    }
}

impl fmt::Display for StoreStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hits, {} misses, {} writes",
            self.hits, self.misses, self.writes
        )
    }
}

#[derive(Debug, Default)]
struct Counters {
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
}

#[derive(Debug)]
enum Backend {
    Disabled,
    Memory(Mutex<HashMap<String, Arc<[u8]>>>),
    Disk(PathBuf),
}

/// Content-addressed blob store for stage artifacts.
#[derive(Debug)]
pub struct ArtifactStore {
    backend: Backend,
    counters: Counters,
}

impl ArtifactStore {
    /// A store where every lookup misses and writes are dropped — the
    /// backend of one-off [`Scenario::run`](crate::scenario::Scenario::run) calls.
    pub fn disabled() -> Self {
        ArtifactStore {
            backend: Backend::Disabled,
            counters: Counters::default(),
        }
    }

    /// A process-local in-memory store (tests, short-lived sweeps).
    pub fn in_memory() -> Self {
        ArtifactStore {
            backend: Backend::Memory(Mutex::new(HashMap::new())),
            counters: Counters::default(),
        }
    }

    /// An on-disk store rooted at `dir` (created if missing).
    ///
    /// Crash recovery: any `*.tmp` files left by writers that died before
    /// their rename are deleted on open. Unlike the model registry (which
    /// *quarantines* — models are primary data), artifacts are a cache: a
    /// torn write costs exactly one recomputation, so the leftovers are
    /// simply swept.
    ///
    /// # Errors
    ///
    /// Returns the `std::io::Error` if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for entry in entries.flatten() {
                let path = entry.path();
                if path.extension().is_some_and(|e| e == "tmp") && path.is_file() {
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
        Ok(ArtifactStore {
            backend: Backend::Disk(dir),
            counters: Counters::default(),
        })
    }

    /// Opens the on-disk store at `$DEEPMORPH_ARTIFACTS`, falling back to
    /// [`DEFAULT_ARTIFACTS_DIR`].
    ///
    /// # Errors
    ///
    /// Returns the `std::io::Error` if the directory cannot be created.
    pub fn from_env() -> std::io::Result<Self> {
        let dir = std::env::var(ARTIFACTS_ENV).unwrap_or_else(|_| DEFAULT_ARTIFACTS_DIR.into());
        ArtifactStore::open(dir)
    }

    /// `true` when lookups can ever hit (memory or disk backend).
    pub fn is_enabled(&self) -> bool {
        !matches!(self.backend, Backend::Disabled)
    }

    /// The root directory of a disk-backed store.
    pub fn dir(&self) -> Option<&Path> {
        match &self.backend {
            Backend::Disk(dir) => Some(dir),
            _ => None,
        }
    }

    fn path_for(dir: &Path, key: &Fingerprint) -> PathBuf {
        dir.join(format!("{}.bin", key.as_hex()))
    }

    /// Looks an artifact up by fingerprint, counting a hit or miss.
    pub fn get(&self, key: &Fingerprint) -> Option<Arc<[u8]>> {
        let found: Option<Arc<[u8]>> = match &self.backend {
            Backend::Disabled => None,
            Backend::Memory(map) => map.lock().expect("store map").get(&key.as_hex()).cloned(),
            Backend::Disk(dir) => std::fs::read(Self::path_for(dir, key)).ok().map(Arc::from),
        };
        match &found {
            Some(_) => self.counters.hits.fetch_add(1, Ordering::Relaxed),
            None => self.counters.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Records that a fetched artifact failed to decode: the preceding hit
    /// becomes a miss (the caller recomputes and overwrites).
    pub fn demote_hit(&self) {
        self.counters.hits.fetch_sub(1, Ordering::Relaxed);
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Persists an artifact. Best effort: storage failures are swallowed
    /// (caching must never fail the science); only successful writes
    /// count.
    pub fn put(&self, key: &Fingerprint, bytes: &[u8]) {
        let ok = match &self.backend {
            Backend::Disabled => return,
            Backend::Memory(map) => {
                map.lock()
                    .expect("store map")
                    .insert(key.as_hex(), Arc::from(bytes));
                true
            }
            Backend::Disk(dir) => Self::write_atomic(dir, key, bytes).is_ok(),
        };
        if ok {
            self.counters.writes.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn write_atomic(dir: &Path, key: &Fingerprint, bytes: &[u8]) -> std::io::Result<()> {
        // Unique temp name per writer so concurrent cells racing on one
        // fingerprint each rename a complete file into place. The write
        // and rename route through the fault-injection layer (a no-op
        // when no plan is armed), so chaos tests can tear this exact
        // seam and assert the sweep in `open` recovers it.
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let tmp = dir.join(format!(
            ".{}.{}.{}.tmp",
            key.as_hex(),
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        deepmorph_faults::write(&tmp, bytes)?;
        let result = deepmorph_faults::rename(&tmp, &Self::path_for(dir, key));
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }

    /// Snapshot of the hit/miss/write counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.counters.hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            writes: self.counters.writes.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> Fingerprint {
        let mut fp = Fingerprinter::new("test");
        fp.push_u64(n);
        fp.finish()
    }

    /// The fault plan is process-global; every test that installs one —
    /// or writes through a disk backend (the faultable seam) — takes
    /// this so a torn-rename storm cannot leak into a neighbor.
    static FAULT_GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn fingerprints_are_order_and_content_sensitive() {
        let mut a = Fingerprinter::new("stage");
        a.push_str("ab");
        a.push_str("c");
        let mut b = Fingerprinter::new("stage");
        b.push_str("a");
        b.push_str("bc");
        assert_ne!(
            a.finish(),
            b.finish(),
            "length prefixes must separate fields"
        );

        let mut c = Fingerprinter::new("stage");
        c.push_f32(0.5);
        let mut d = Fingerprinter::new("stage");
        d.push_f32(-0.5);
        assert_ne!(c.finish(), d.finish());

        let mut e = Fingerprinter::new("stage");
        e.push_u64(7);
        let mut f = Fingerprinter::new("stage");
        f.push_u64(7);
        let (e, f) = (e.finish(), f.finish());
        assert_eq!(e, f);
        assert_eq!(e.as_hex().len(), 32);
    }

    #[test]
    fn disabled_store_never_hits() {
        let store = ArtifactStore::disabled();
        store.put(&key(1), b"data");
        assert!(store.get(&key(1)).is_none());
        let stats = store.stats();
        assert_eq!(stats.hits, 0);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.writes, 0);
        assert!(!store.is_enabled());
    }

    #[test]
    fn memory_store_round_trips_and_counts() {
        let store = ArtifactStore::in_memory();
        assert!(store.get(&key(1)).is_none());
        store.put(&key(1), b"payload");
        let got = store.get(&key(1)).expect("stored");
        assert_eq!(&got[..], b"payload");
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses, stats.writes), (1, 1, 1));
    }

    #[test]
    fn disk_store_round_trips() {
        let _guard = FAULT_GUARD.lock().unwrap_or_else(|p| p.into_inner());
        let dir = std::env::temp_dir().join(format!("deepmorph-store-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir).unwrap();
        assert_eq!(store.dir(), Some(dir.as_path()));
        store.put(&key(2), b"on disk");
        assert_eq!(&store.get(&key(2)).unwrap()[..], b"on disk");

        // A second handle over the same directory sees the artifact.
        let other = ArtifactStore::open(&dir).unwrap();
        assert_eq!(&other.get(&key(2)).unwrap()[..], b"on disk");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_stale_tmp_files_and_keeps_artifacts() {
        let _guard = FAULT_GUARD.lock().unwrap_or_else(|p| p.into_inner());
        let dir =
            std::env::temp_dir().join(format!("deepmorph-store-sweep-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let store = ArtifactStore::open(&dir).unwrap();
            store.put(&key(9), b"survivor");
        }
        // A writer that died between write and rename leaves a tmp file.
        std::fs::write(dir.join(".deadbeef.1234.0.tmp"), b"torn").unwrap();

        let store = ArtifactStore::open(&dir).unwrap();
        assert_eq!(
            &store.get(&key(9)).expect("committed artifact survives")[..],
            b"survivor"
        );
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "stale tmp files are swept on open");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_artifact_write_leaves_no_visible_artifact() {
        let _guard = FAULT_GUARD.lock().unwrap_or_else(|p| p.into_inner());
        let dir = std::env::temp_dir().join(format!("deepmorph-store-torn-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::open(&dir).unwrap();

        // Rename fails 100% of the time: the put is swallowed (best
        // effort) and no half-artifact becomes visible under the key.
        deepmorph_faults::install(
            deepmorph_faults::FaultPlan::new(7).with(deepmorph_faults::Fault::FsRenameFail, 1.0),
        );
        store.put(&key(10), b"never lands");
        deepmorph_faults::clear();

        assert!(store.get(&key(10)).is_none(), "torn write is invisible");
        assert_eq!(store.stats().writes, 0, "failed writes are not counted");

        // The same put succeeds once the fault storm passes.
        store.put(&key(10), b"lands now");
        assert_eq!(&store.get(&key(10)).unwrap()[..], b"lands now");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn demote_hit_reclassifies() {
        let store = ArtifactStore::in_memory();
        store.put(&key(3), b"junk");
        let _ = store.get(&key(3));
        store.demote_hit();
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
    }

    #[test]
    fn stats_since_subtracts() {
        let store = ArtifactStore::in_memory();
        let before = store.stats();
        store.put(&key(4), b"x");
        let _ = store.get(&key(4));
        let delta = store.stats().since(&before);
        assert_eq!((delta.hits, delta.misses, delta.writes), (1, 0, 1));
    }
}
