use std::error::Error;
use std::fmt;

use deepmorph_nn::NnError;
use deepmorph_tensor::TensorError;

/// Errors produced by the DeepMorph pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeepMorphError {
    /// An underlying network/tensor operation failed.
    Nn(NnError),
    /// The model exposes no probe points, or probe metadata disagrees with
    /// the graph.
    Instrumentation {
        /// Description of the inconsistency.
        reason: String,
    },
    /// Diagnosis was requested with no faulty cases.
    NoFaultyCases,
    /// A scenario was configured inconsistently (e.g. dataset/model channel
    /// mismatch, empty training set after injection).
    InvalidScenario {
        /// Description of the problem.
        reason: String,
    },
    /// A stage artifact could not be decoded or reinstantiated (corrupt
    /// store entry, incompatible format, mismatched model revision).
    Artifact {
        /// Description of the problem.
        reason: String,
    },
}

impl fmt::Display for DeepMorphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeepMorphError::Nn(e) => write!(f, "network error: {e}"),
            DeepMorphError::Instrumentation { reason } => {
                write!(f, "instrumentation error: {reason}")
            }
            DeepMorphError::NoFaultyCases => {
                write!(
                    f,
                    "no faulty cases to diagnose (model classifies the test set perfectly)"
                )
            }
            DeepMorphError::InvalidScenario { reason } => {
                write!(f, "invalid scenario: {reason}")
            }
            DeepMorphError::Artifact { reason } => {
                write!(f, "artifact error: {reason}")
            }
        }
    }
}

impl Error for DeepMorphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DeepMorphError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for DeepMorphError {
    fn from(e: NnError) -> Self {
        DeepMorphError::Nn(e)
    }
}

impl From<deepmorph_defects::DefectError> for DeepMorphError {
    fn from(e: deepmorph_defects::DefectError) -> Self {
        DeepMorphError::InvalidScenario {
            reason: format!("defect injection rejected: {e}"),
        }
    }
}

impl From<TensorError> for DeepMorphError {
    fn from(e: TensorError) -> Self {
        DeepMorphError::Nn(NnError::Tensor(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let te = TensorError::InvalidShape {
            shape: vec![1],
            reason: "x",
        };
        let err: DeepMorphError = te.into();
        assert!(err.to_string().contains("network error"));
        assert!(err.source().is_some());
        assert!(DeepMorphError::NoFaultyCases.to_string().contains("faulty"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DeepMorphError>();
    }
}
