//! Diagnosis reports.

use std::fmt;

use deepmorph_json::{Json, JsonError};

use deepmorph_defects::DefectKind;

/// The three defect ratios in `[ITD, UTD, SD]` order — one row of the
/// paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefectRatios {
    ratios: [f32; 3],
}

impl DefectRatios {
    /// Wraps raw ratios (expected to sum to ≈ 1).
    pub fn new(ratios: [f32; 3]) -> Self {
        DefectRatios { ratios }
    }

    /// The ratio reported for a defect kind.
    pub fn get(&self, kind: DefectKind) -> f32 {
        self.ratios[kind.index()]
    }

    /// The raw `[ITD, UTD, SD]` array.
    pub fn as_array(&self) -> [f32; 3] {
        self.ratios
    }

    /// The defect with the highest ratio (`None` for an all-zero row).
    pub fn dominant(&self) -> Option<DefectKind> {
        let mut best: Option<(DefectKind, f32)> = None;
        for kind in DefectKind::all() {
            let v = self.get(kind);
            if best.map_or(v > 0.0, |(_, bv)| v > bv) {
                best = Some((kind, v));
            }
        }
        best.map(|(k, _)| k)
    }
}

impl fmt::Display for DefectRatios {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ITD={:.3} UTD={:.3} SD={:.3}",
            self.ratios[0], self.ratios[1], self.ratios[2]
        )
    }
}

/// Per-case diagnosis detail.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseDiagnosis {
    /// Index of the case within the faulty set.
    pub case_index: usize,
    /// Ground-truth label.
    pub true_label: usize,
    /// Model prediction.
    pub predicted: usize,
    /// Defect this case was assigned to.
    pub assigned: String,
    /// Normalized `[ITD, UTD, SD]` score distribution.
    pub score_distribution: [f32; 3],
}

/// The output of one DeepMorph diagnosis run.
#[derive(Debug, Clone, PartialEq)]
pub struct DefectReport {
    /// Ratio of faulty cases attributed to each defect type.
    pub ratios: DefectRatios,
    /// Number of faulty cases analyzed.
    pub num_cases: usize,
    /// Probe stage labels, input → output order.
    pub probe_labels: Vec<String>,
    /// Per-probe training accuracy (the layer-wise feature-quality curve).
    pub probe_accuracies: Vec<f32>,
    /// Model health in `[0, 1]` (see
    /// [`ClassPatterns::health`](crate::pattern::ClassPatterns::health)).
    pub model_health: f32,
    /// Per-case detail.
    pub cases: Vec<CaseDiagnosis>,
    /// Free-form description of the diagnosed model (family, dataset, …).
    pub subject: String,
}

impl DefectReport {
    /// The dominant (reported) defect.
    pub fn dominant(&self) -> Option<DefectKind> {
        self.ratios.dominant()
    }

    /// The ratio for one defect kind.
    pub fn ratio(&self, kind: DefectKind) -> f32 {
        self.ratios.get(kind)
    }

    /// Serializes the report as pretty JSON (for the experiment harness).
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string_pretty()
    }

    /// The report as a [`Json`] value.
    pub fn to_json_value(&self) -> Json {
        Json::obj([
            ("subject", Json::str(self.subject.clone())),
            ("num_cases", Json::num(self.num_cases as f64)),
            ("model_health", Json::num(f64::from(self.model_health))),
            ("ratios", ratios_to_json(&self.ratios.as_array())),
            (
                "probe_labels",
                Json::arr(self.probe_labels.iter().map(|l| Json::str(l.clone()))),
            ),
            (
                "probe_accuracies",
                Json::arr(
                    self.probe_accuracies
                        .iter()
                        .map(|&a| Json::num(f64::from(a))),
                ),
            ),
            (
                "cases",
                Json::arr(self.cases.iter().map(|c| {
                    Json::obj([
                        ("case_index", Json::num(c.case_index as f64)),
                        ("true_label", Json::num(c.true_label as f64)),
                        ("predicted", Json::num(c.predicted as f64)),
                        ("assigned", Json::str(c.assigned.clone())),
                        ("score_distribution", ratios_to_json(&c.score_distribution)),
                    ])
                })),
            ),
        ])
    }

    /// Parses a report previously produced by [`DefectReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed documents or missing fields.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let doc = Json::parse(text)?;
        let field_err = |name: &str| JsonError {
            message: format!("bad field '{name}'"),
            offset: 0,
        };
        let f32_field = |value: &Json, name: &str| -> Result<f32, JsonError> {
            value
                .as_f64()
                .map(|v| v as f32)
                .ok_or_else(|| field_err(name))
        };
        let cases = doc
            .req("cases")?
            .as_arr()
            .ok_or_else(|| field_err("cases"))?
            .iter()
            .map(|c| {
                Ok(CaseDiagnosis {
                    case_index: c
                        .req("case_index")?
                        .as_usize()
                        .ok_or_else(|| field_err("case_index"))?,
                    true_label: c
                        .req("true_label")?
                        .as_usize()
                        .ok_or_else(|| field_err("true_label"))?,
                    predicted: c
                        .req("predicted")?
                        .as_usize()
                        .ok_or_else(|| field_err("predicted"))?,
                    assigned: c
                        .req("assigned")?
                        .as_str()
                        .ok_or_else(|| field_err("assigned"))?
                        .to_string(),
                    score_distribution: ratios_from_json(c.req("score_distribution")?)?,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        Ok(DefectReport {
            ratios: DefectRatios::new(ratios_from_json(doc.req("ratios")?)?),
            num_cases: doc
                .req("num_cases")?
                .as_usize()
                .ok_or_else(|| field_err("num_cases"))?,
            probe_labels: doc
                .req("probe_labels")?
                .as_arr()
                .ok_or_else(|| field_err("probe_labels"))?
                .iter()
                .map(|l| {
                    l.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| field_err("probe_labels"))
                })
                .collect::<Result<Vec<_>, JsonError>>()?,
            probe_accuracies: doc
                .req("probe_accuracies")?
                .as_arr()
                .ok_or_else(|| field_err("probe_accuracies"))?
                .iter()
                .map(|a| f32_field(a, "probe_accuracies"))
                .collect::<Result<Vec<_>, JsonError>>()?,
            model_health: f32_field(doc.req("model_health")?, "model_health")?,
            cases,
            subject: doc
                .req("subject")?
                .as_str()
                .ok_or_else(|| field_err("subject"))?
                .to_string(),
        })
    }
}

fn ratios_to_json(ratios: &[f32; 3]) -> Json {
    Json::arr(ratios.iter().map(|&v| Json::num(f64::from(v))))
}

fn ratios_from_json(value: &Json) -> Result<[f32; 3], JsonError> {
    let items = value.as_arr().ok_or(JsonError {
        message: "ratios must be an array".into(),
        offset: 0,
    })?;
    if items.len() != 3 {
        return Err(JsonError {
            message: format!("ratios must have 3 entries, got {}", items.len()),
            offset: 0,
        });
    }
    let mut out = [0.0f32; 3];
    for (slot, item) in out.iter_mut().zip(items) {
        *slot = item.as_f64().ok_or(JsonError {
            message: "ratio entries must be numbers".into(),
            offset: 0,
        })? as f32;
    }
    Ok(out)
}

impl fmt::Display for DefectReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DeepMorph diagnosis of {}", self.subject)?;
        writeln!(
            f,
            "  faulty cases analyzed : {} (model health {:.2})",
            self.num_cases, self.model_health
        )?;
        writeln!(f, "  probe accuracy curve  :")?;
        for (label, acc) in self.probe_labels.iter().zip(&self.probe_accuracies) {
            writeln!(f, "    {label:<12} {acc:.3}")?;
        }
        writeln!(f, "  defect ratios         : {}", self.ratios)?;
        match self.dominant() {
            Some(kind) => writeln!(f, "  dominant defect       : {} ({})", kind, kind.name()),
            None => writeln!(f, "  dominant defect       : none"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> DefectReport {
        DefectReport {
            ratios: DefectRatios::new([0.7, 0.2, 0.1]),
            num_cases: 42,
            probe_labels: vec!["conv1".into(), "fc1".into()],
            probe_accuracies: vec![0.4, 0.9],
            model_health: 0.88,
            cases: vec![CaseDiagnosis {
                case_index: 0,
                true_label: 3,
                predicted: 5,
                assigned: "ITD".into(),
                score_distribution: [0.6, 0.3, 0.1],
            }],
            subject: "LeNet on synth-digits".into(),
        }
    }

    #[test]
    fn dominant_is_argmax() {
        let r = report();
        assert_eq!(r.dominant(), Some(DefectKind::InsufficientTrainingData));
        assert!((r.ratio(DefectKind::UnreliableTrainingData) - 0.2).abs() < 1e-6);
    }

    #[test]
    fn empty_ratios_have_no_dominant() {
        let r = DefectRatios::new([0.0; 3]);
        assert_eq!(r.dominant(), None);
    }

    #[test]
    fn display_contains_key_facts() {
        let text = report().to_string();
        assert!(text.contains("LeNet"));
        assert!(text.contains("ITD=0.700"));
        assert!(text.contains("Insufficient Training Data"));
        assert!(text.contains("42"));
    }

    #[test]
    fn json_round_trips() {
        let r = report();
        let json = r.to_json();
        let back = DefectReport::from_json(&json).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn from_json_rejects_malformed_reports() {
        assert!(DefectReport::from_json("{}").is_err());
        assert!(DefectReport::from_json("not json").is_err());
        let missing_ratio = r#"{"subject": "x", "num_cases": 0, "model_health": 1.0,
            "ratios": [0.5, 0.5], "probe_labels": [], "probe_accuracies": [], "cases": []}"#;
        assert!(DefectReport::from_json(missing_ratio).is_err());
    }
}
