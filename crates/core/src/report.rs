//! Diagnosis reports.

use std::fmt;

use serde::{Deserialize, Serialize};

use deepmorph_defects::DefectKind;

/// The three defect ratios in `[ITD, UTD, SD]` order — one row of the
/// paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DefectRatios {
    ratios: [f32; 3],
}

impl DefectRatios {
    /// Wraps raw ratios (expected to sum to ≈ 1).
    pub fn new(ratios: [f32; 3]) -> Self {
        DefectRatios { ratios }
    }

    /// The ratio reported for a defect kind.
    pub fn get(&self, kind: DefectKind) -> f32 {
        self.ratios[kind.index()]
    }

    /// The raw `[ITD, UTD, SD]` array.
    pub fn as_array(&self) -> [f32; 3] {
        self.ratios
    }

    /// The defect with the highest ratio (`None` for an all-zero row).
    pub fn dominant(&self) -> Option<DefectKind> {
        let mut best: Option<(DefectKind, f32)> = None;
        for kind in DefectKind::all() {
            let v = self.get(kind);
            if best.map_or(v > 0.0, |(_, bv)| v > bv) {
                best = Some((kind, v));
            }
        }
        best.map(|(k, _)| k)
    }
}

impl fmt::Display for DefectRatios {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ITD={:.3} UTD={:.3} SD={:.3}",
            self.ratios[0], self.ratios[1], self.ratios[2]
        )
    }
}

/// Per-case diagnosis detail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CaseDiagnosis {
    /// Index of the case within the faulty set.
    pub case_index: usize,
    /// Ground-truth label.
    pub true_label: usize,
    /// Model prediction.
    pub predicted: usize,
    /// Defect this case was assigned to.
    pub assigned: String,
    /// Normalized `[ITD, UTD, SD]` score distribution.
    pub score_distribution: [f32; 3],
}

/// The output of one DeepMorph diagnosis run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DefectReport {
    /// Ratio of faulty cases attributed to each defect type.
    pub ratios: DefectRatios,
    /// Number of faulty cases analyzed.
    pub num_cases: usize,
    /// Probe stage labels, input → output order.
    pub probe_labels: Vec<String>,
    /// Per-probe training accuracy (the layer-wise feature-quality curve).
    pub probe_accuracies: Vec<f32>,
    /// Model health in `[0, 1]` (see
    /// [`ClassPatterns::health`](crate::pattern::ClassPatterns::health)).
    pub model_health: f32,
    /// Per-case detail.
    pub cases: Vec<CaseDiagnosis>,
    /// Free-form description of the diagnosed model (family, dataset, …).
    pub subject: String,
}

impl DefectReport {
    /// The dominant (reported) defect.
    pub fn dominant(&self) -> Option<DefectKind> {
        self.ratios.dominant()
    }

    /// The ratio for one defect kind.
    pub fn ratio(&self, kind: DefectKind) -> f32 {
        self.ratios.get(kind)
    }

    /// Serializes the report as pretty JSON (for the experiment harness).
    ///
    /// # Panics
    ///
    /// Never panics: the report contains no non-serializable values.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report is serializable")
    }
}

impl fmt::Display for DefectReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DeepMorph diagnosis of {}", self.subject)?;
        writeln!(
            f,
            "  faulty cases analyzed : {} (model health {:.2})",
            self.num_cases, self.model_health
        )?;
        writeln!(f, "  probe accuracy curve  :")?;
        for (label, acc) in self.probe_labels.iter().zip(&self.probe_accuracies) {
            writeln!(f, "    {label:<12} {acc:.3}")?;
        }
        writeln!(f, "  defect ratios         : {}", self.ratios)?;
        match self.dominant() {
            Some(kind) => writeln!(f, "  dominant defect       : {} ({})", kind, kind.name()),
            None => writeln!(f, "  dominant defect       : none"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> DefectReport {
        DefectReport {
            ratios: DefectRatios::new([0.7, 0.2, 0.1]),
            num_cases: 42,
            probe_labels: vec!["conv1".into(), "fc1".into()],
            probe_accuracies: vec![0.4, 0.9],
            model_health: 0.88,
            cases: vec![CaseDiagnosis {
                case_index: 0,
                true_label: 3,
                predicted: 5,
                assigned: "ITD".into(),
                score_distribution: [0.6, 0.3, 0.1],
            }],
            subject: "LeNet on synth-digits".into(),
        }
    }

    #[test]
    fn dominant_is_argmax() {
        let r = report();
        assert_eq!(r.dominant(), Some(DefectKind::InsufficientTrainingData));
        assert!((r.ratio(DefectKind::UnreliableTrainingData) - 0.2).abs() < 1e-6);
    }

    #[test]
    fn empty_ratios_have_no_dominant() {
        let r = DefectRatios::new([0.0; 3]);
        assert_eq!(r.dominant(), None);
    }

    #[test]
    fn display_contains_key_facts() {
        let text = report().to_string();
        assert!(text.contains("LeNet"));
        assert!(text.contains("ITD=0.700"));
        assert!(text.contains("Insufficient Training Data"));
        assert!(text.contains("42"));
    }

    #[test]
    fn json_round_trips() {
        let r = report();
        let json = r.to_json();
        let back: DefectReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
