//! Human-readable diagnosis explanations.
//!
//! The paper positions DeepMorph as a tool that "can instantly direct a
//! developer to improving the DL model". This module renders the evidence
//! behind a diagnosis: a per-case, layer-by-layer trace of how the input's
//! data flow departed from its class's execution pattern, plus the
//! aggregate narrative for the whole report.

use std::fmt::Write as _;

use deepmorph_tensor::stats;

use crate::classify::AlignmentMetric;
use crate::footprint::Footprint;
use crate::pattern::ClassPatterns;
use crate::report::DefectReport;

/// Renders a layer-by-layer trace of one faulty case.
///
/// Each probed layer shows the probe's top class, its probability, the
/// alignment with the true class's execution pattern, and the alignment
/// with the predicted class's pattern — the columns a developer reads to
/// see *where* the flow went wrong.
pub fn explain_case(
    footprint: &Footprint,
    true_label: usize,
    predicted: usize,
    patterns: &ClassPatterns,
    probe_labels: &[String],
) -> String {
    let metric = AlignmentMetric::JensenShannon;
    let mut out = String::new();
    let _ = writeln!(out, "case: true class {true_label}, predicted {predicted}");
    let _ = writeln!(
        out,
        "{:<12} {:>6} {:>7} | {:>10} {:>10}",
        "layer", "top", "p(top)", "align(true)", "align(pred)"
    );
    for l in 0..footprint.depth() {
        let dist = footprint.layer(l);
        let top = stats::argmax(dist);
        let a_true = metric.similarity(dist, patterns.pattern(l, true_label));
        let a_pred = metric.similarity(dist, patterns.pattern(l, predicted));
        let marker = if top == true_label {
            " "
        } else if top == predicted {
            "<- flips to prediction"
        } else {
            "<- departs"
        };
        let label = probe_labels.get(l).map(String::as_str).unwrap_or("(probe)");
        let _ = writeln!(
            out,
            "{label:<12} {top:>6} {:>7.3} | {a_true:>10.3} {a_pred:>10.3}  {marker}",
            dist[top],
        );
    }
    out
}

/// Renders the aggregate narrative for a report: what was found, the
/// strength of the evidence, and the recommended next step.
pub fn explain_report(report: &DefectReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Diagnosis of {}", report.subject);
    let _ = writeln!(
        out,
        "Analyzed {} faulty cases across {} probed layers.",
        report.num_cases,
        report.probe_labels.len()
    );
    let _ = writeln!(out, "Defect attribution: {}.", report.ratios);

    match report.dominant() {
        None => {
            let _ = writeln!(out, "No dominant defect could be established.");
        }
        Some(kind) => {
            let ratio = report.ratio(kind);
            let strength = if ratio >= 0.75 {
                "strong"
            } else if ratio >= 0.5 {
                "clear"
            } else {
                "weak (inspect per-case evidence)"
            };
            let _ = writeln!(
                out,
                "Dominant defect: {} ({}) — {} evidence at ratio {:.2}.",
                kind.abbrev(),
                kind.name(),
                strength,
                ratio
            );
            let advice = match kind.abbrev() {
                "ITD" => {
                    "Next step: inspect the true-class histogram of the faulty cases and \
                     collect more training data for the over-represented classes."
                }
                "UTD" => {
                    "Next step: audit training labels along the dominant (true -> predicted) \
                     pair; samples carrying the predicted label but executing as the true \
                     class are likely mislabeled."
                }
                _ => {
                    "Next step: the model separates even its own training data poorly, or \
                     its probes outvote its head; add convolutional capacity or depth."
                }
            };
            let _ = writeln!(out, "{advice}");
        }
    }
    if let Some((worst_idx, _)) = report
        .probe_accuracies
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).expect("accuracies are finite"))
    {
        let _ = writeln!(
            out,
            "Weakest stage: {} (probe accuracy {:.2}); model health {:.2}.",
            report.probe_labels[worst_idx], report.probe_accuracies[worst_idx], report.model_health
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::FootprintSet;
    use crate::report::{CaseDiagnosis, DefectRatios};

    fn patterns() -> ClassPatterns {
        let mut fps = Vec::new();
        let mut labels = Vec::new();
        for c in 0..3usize {
            for _ in 0..4 {
                let mut layers = Vec::new();
                for l in 0..3usize {
                    let sharp = (l + 1) as f32 / 3.0;
                    let mut dist = vec![(1.0 - sharp) / 3.0; 3];
                    dist[c] += sharp;
                    layers.push(dist);
                }
                fps.push(Footprint::new(layers));
                labels.push(c);
            }
        }
        let set = FootprintSet::new(fps, vec!["stage1".into(), "stage2".into(), "fc".into()], 3);
        ClassPatterns::learn(&set, &labels, vec![0.5, 0.7, 0.9]).unwrap()
    }

    #[test]
    fn case_trace_shows_flip() {
        let p = patterns();
        let fp = Footprint::new(vec![
            vec![0.5, 0.25, 0.25],
            vec![0.2, 0.7, 0.1],
            vec![0.05, 0.9, 0.05],
        ]);
        let text = explain_case(
            &fp,
            0,
            1,
            &p,
            &["stage1".into(), "stage2".into(), "fc".into()],
        );
        assert!(text.contains("true class 0"));
        assert!(text.contains("flips to prediction"));
        assert!(text.contains("stage2"));
    }

    #[test]
    fn report_narrative_names_defect_and_next_step() {
        let report = DefectReport {
            ratios: DefectRatios::new([0.1, 0.8, 0.1]),
            num_cases: 20,
            probe_labels: vec!["stage1".into(), "fc".into()],
            probe_accuracies: vec![0.4, 0.9],
            model_health: 0.88,
            cases: vec![CaseDiagnosis {
                case_index: 0,
                true_label: 3,
                predicted: 5,
                assigned: "UTD".into(),
                score_distribution: [0.1, 0.8, 0.1],
            }],
            subject: "ResNet on synth-objects".into(),
        };
        let text = explain_report(&report);
        assert!(text.contains("Unreliable Training Data"));
        assert!(text.contains("audit training labels"));
        assert!(text.contains("strong"));
        assert!(text.contains("stage1")); // weakest probe
    }

    #[test]
    fn weak_evidence_is_flagged() {
        let report = DefectReport {
            ratios: DefectRatios::new([0.4, 0.35, 0.25]),
            num_cases: 5,
            probe_labels: vec!["fc".into()],
            probe_accuracies: vec![0.9],
            model_health: 0.9,
            cases: vec![],
            subject: "x".into(),
        };
        let text = explain_report(&report);
        assert!(text.contains("weak"));
    }
}
