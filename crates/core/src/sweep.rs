//! Concurrent experiment sweeps over the staged engine.
//!
//! An [`ExperimentPlan`] is a grid of [`Scenario`] cells (typically one
//! base configuration × many defect severities). A [`SweepRunner`]
//! executes the grid:
//!
//! * **Shared base stages first.** Each cell's *healthy twin* (the same
//!   scenario with [`DefectSpec::Healthy`]) is severity-invariant, so its
//!   training stage is fingerprint-shared across the whole sweep. The
//!   runner computes every distinct twin once, serially, before fanning
//!   out — concurrent cells then *load* the base artifact instead of
//!   racing to retrain it. The per-cell baseline accuracy this yields is
//!   what turns a sweep into a dose-response curve (accuracy drop vs.
//!   severity).
//! * **Cells run concurrently** on the `deepmorph-parallel` pool
//!   (scenario-level parallelism; the kernel-level pool inside each cell
//!   stays serial on worker threads). Every cell is seeded from its own
//!   scenario configuration, so results are bitwise independent of the
//!   schedule: a sweep report equals running each scenario alone,
//!   serially, cell for cell.
//! * **Artifacts are shared through the store**, so re-running a sweep
//!   with a warm [`ArtifactStore`] recomputes nothing, and a sweep that
//!   adds severity points only trains the new cells.

use deepmorph_defects::DefectSpec;
use deepmorph_json::Json;

use crate::artifact::{ArtifactStore, Fingerprint, StoreStats};
use crate::scenario::{RepairOutcome, Scenario, ScenarioBuilder, ScenarioOutcome};
use crate::stage::StagedEngine;
use crate::{DeepMorphError, Result};

/// A grid of scenarios to execute as one sweep.
#[derive(Debug, Clone)]
pub struct ExperimentPlan {
    cells: Vec<Scenario>,
    baseline: bool,
    repair: bool,
}

impl ExperimentPlan {
    /// An empty plan (baseline sharing on, repair off).
    pub fn new() -> Self {
        ExperimentPlan {
            cells: Vec::new(),
            baseline: true,
            repair: false,
        }
    }

    /// Builds a plan from one base configuration and a list of defects —
    /// the severity-sweep constructor.
    ///
    /// # Errors
    ///
    /// Propagates [`ScenarioBuilder::build`] validation errors.
    pub fn from_defects(
        base: ScenarioBuilder,
        defects: impl IntoIterator<Item = DefectSpec>,
    ) -> Result<Self> {
        let mut plan = ExperimentPlan::new();
        for defect in defects {
            plan.cells.push(base.clone().inject(defect).build()?);
        }
        Ok(plan)
    }

    /// Appends a cell.
    pub fn with_cell(mut self, scenario: Scenario) -> Self {
        self.cells.push(scenario);
        self
    }

    /// Enables or disables the shared healthy-baseline stage (on by
    /// default). With it on, every cell report carries the healthy twin's
    /// test accuracy; the twin is trained once per sweep and loaded from
    /// the store everywhere else.
    pub fn with_baseline(mut self, on: bool) -> Self {
        self.baseline = on;
        self
    }

    /// Enables the repair evaluation per cell (diagnose → apply the
    /// recommended repair → retrain → measure).
    pub fn with_repair(mut self, on: bool) -> Self {
        self.repair = on;
        self
    }

    /// The cells, in plan order.
    pub fn cells(&self) -> &[Scenario] {
        &self.cells
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` when the plan holds no cells.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }
}

impl Default for ExperimentPlan {
    fn default() -> Self {
        ExperimentPlan::new()
    }
}

/// The result of one sweep cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// The cell's subject line.
    pub subject: String,
    /// The injected defect.
    pub defect: DefectSpec,
    /// Full scenario fingerprint (the report-stage store key).
    pub fingerprint: Fingerprint,
    /// The scenario outcome, or the per-cell error (a perfect model
    /// surfaces as [`DeepMorphError::NoFaultyCases`], not a sweep
    /// failure).
    pub outcome: std::result::Result<ScenarioOutcome, DeepMorphError>,
    /// The repair evaluation, when the plan enabled it and the cell
    /// succeeded.
    pub repair: Option<RepairOutcome>,
    /// Clean-test accuracy of the cell's healthy twin, when baseline
    /// sharing was enabled.
    pub baseline_test_accuracy: Option<f32>,
}

impl CellReport {
    /// Accuracy lost to the defect relative to the healthy baseline.
    pub fn accuracy_drop(&self) -> Option<f32> {
        match (&self.outcome, self.baseline_test_accuracy) {
            (Ok(outcome), Some(base)) => Some(base - outcome.test_accuracy),
            _ => None,
        }
    }
}

/// All cell reports of a finished sweep plus the store-counter deltas it
/// produced.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Per-cell results, in plan order.
    pub cells: Vec<CellReport>,
    /// Store hit/miss/write deltas attributable to this sweep.
    pub store: StoreStats,
}

impl SweepReport {
    /// Number of cells that produced a diagnosis.
    pub fn succeeded(&self) -> usize {
        self.cells.iter().filter(|c| c.outcome.is_ok()).count()
    }

    /// The report as a [`Json`] value (for `--json` output and the CI
    /// smoke).
    pub fn to_json_value(&self) -> Json {
        Json::obj([
            (
                "store",
                Json::obj([
                    ("hits", Json::usize(self.store.hits as usize)),
                    ("misses", Json::usize(self.store.misses as usize)),
                    ("writes", Json::usize(self.store.writes as usize)),
                ]),
            ),
            (
                "cells",
                Json::arr(self.cells.iter().map(|c| {
                    let mut fields = vec![
                        ("subject".to_string(), Json::str(c.subject.clone())),
                        ("defect".to_string(), Json::str(c.defect.describe())),
                        ("fingerprint".to_string(), Json::str(c.fingerprint.as_hex())),
                    ];
                    match &c.outcome {
                        Ok(outcome) => {
                            fields.push(("ok".into(), Json::Bool(true)));
                            fields.push(("report".into(), outcome.report.to_json_value()));
                            fields.push((
                                "test_accuracy".into(),
                                Json::num(f64::from(outcome.test_accuracy)),
                            ));
                            fields.push((
                                "train_accuracy".into(),
                                Json::num(f64::from(outcome.train_accuracy)),
                            ));
                            fields.push(("faulty_count".into(), Json::usize(outcome.faulty_count)));
                        }
                        Err(e) => {
                            fields.push(("ok".into(), Json::Bool(false)));
                            fields.push(("error".into(), Json::str(e.to_string())));
                        }
                    }
                    if let Some(base) = c.baseline_test_accuracy {
                        fields.push(("baseline_test_accuracy".into(), Json::num(f64::from(base))));
                    }
                    if let Some(drop) = c.accuracy_drop() {
                        fields.push(("accuracy_drop".into(), Json::num(f64::from(drop))));
                    }
                    if let Some(repair) = &c.repair {
                        fields.push((
                            "repair".into(),
                            Json::obj([
                                ("plan", Json::str(repair.plan.to_string())),
                                (
                                    "accuracy_before",
                                    Json::num(f64::from(repair.accuracy_before)),
                                ),
                                (
                                    "accuracy_after",
                                    Json::num(f64::from(repair.accuracy_after)),
                                ),
                                (
                                    "repaired_train_size",
                                    Json::usize(repair.repaired_train_size),
                                ),
                            ]),
                        ));
                    }
                    Json::Obj(fields)
                })),
            ),
        ])
    }
}

/// Executes [`ExperimentPlan`]s against a shared [`ArtifactStore`].
#[derive(Debug)]
pub struct SweepRunner {
    engine: StagedEngine,
}

impl SweepRunner {
    /// A runner over the given store.
    pub fn new(store: ArtifactStore) -> Self {
        SweepRunner {
            engine: StagedEngine::new(store),
        }
    }

    /// A runner around an existing engine.
    pub fn with_engine(engine: StagedEngine) -> Self {
        SweepRunner { engine }
    }

    /// The underlying engine (and through it, the store counters).
    pub fn engine(&self) -> &StagedEngine {
        &self.engine
    }

    /// Runs every cell of the plan and aggregates the reports.
    ///
    /// Cell-level failures are captured in the per-cell
    /// [`CellReport::outcome`]; the sweep itself always completes.
    pub fn run(&self, plan: &ExperimentPlan) -> SweepReport {
        let before = self.engine.store().stats();

        // Compute each distinct shared base stage once, serially, before
        // the fan-out: concurrent cells then hit the store instead of
        // training the same healthy twin in parallel. With a disabled
        // store nothing can be shared, so the baseline is skipped rather
        // than retrained per cell.
        let share_baseline = plan.baseline && self.engine.store().is_enabled();
        let mut ready_twins = std::collections::HashSet::new();
        if share_baseline {
            let mut attempted = std::collections::HashSet::new();
            for cell in &plan.cells {
                let twin = cell.healthy_twin();
                let key = StagedEngine::trained_fingerprint(&twin).as_hex();
                // One training attempt per distinct twin. A twin that
                // fails simply yields no baseline column; the defective
                // cells still run — and skip the lookup entirely, so N
                // cells never re-run a failing base training concurrently.
                if attempted.insert(key.clone()) && self.engine.trained(&twin).is_ok() {
                    ready_twins.insert(key);
                }
            }
        }

        let run_cell = |i: usize| -> CellReport {
            let scenario = &plan.cells[i];
            let twin = scenario.healthy_twin();
            let baseline_test_accuracy = if share_baseline
                && ready_twins.contains(&StagedEngine::trained_fingerprint(&twin).as_hex())
            {
                self.engine.trained(&twin).ok().map(|a| a.test_accuracy)
            } else {
                None
            };
            let (outcome, repair) = if plan.repair {
                match self.engine.run_with_repair(scenario) {
                    Ok((outcome, repair)) => (Ok(outcome), Some(repair)),
                    Err(e) => (Err(e), None),
                }
            } else {
                (self.engine.run(scenario), None)
            };
            CellReport {
                subject: scenario.subject(),
                defect: scenario.defect().clone(),
                fingerprint: scenario.fingerprint(),
                outcome,
                repair,
                baseline_test_accuracy,
            }
        };

        #[cfg(feature = "parallel")]
        let cells = deepmorph_parallel::par_map(plan.cells.len(), run_cell);
        #[cfg(not(feature = "parallel"))]
        let cells = (0..plan.cells.len()).map(run_cell).collect();

        SweepReport {
            cells,
            store: self.engine.store().stats().since(&before),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmorph_data::DatasetKind;
    use deepmorph_models::ModelFamily;

    #[test]
    fn plan_builders_compose() {
        let base = Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
            .seed(1)
            .train_per_class(5)
            .test_per_class(2);
        let plan = ExperimentPlan::from_defects(
            base.clone(),
            [0.2f32, 0.5].map(|f| DefectSpec::unreliable_training_data(3, 5, f)),
        )
        .unwrap()
        .with_cell(base.build().unwrap())
        .with_repair(true)
        .with_baseline(false);
        assert_eq!(plan.len(), 3);
        assert!(!plan.is_empty());
        assert!(matches!(plan.cells()[2].defect(), DefectSpec::Healthy));
    }

    // Sweep execution tests train real models and live in `tests/sweep.rs`.
}
