//! Common generator trait and raster helpers shared by the synthetic
//! dataset families.

use deepmorph_tensor::Tensor;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::dataset::Dataset;

/// A procedural image generator with fixed class semantics.
///
/// Implementors render one sample of a given class; [`DataGenerator::generate`]
/// assembles whole balanced datasets from it.
pub trait DataGenerator {
    /// Number of classes the generator can render.
    fn num_classes(&self) -> usize;

    /// Image shape `[c, h, w]`.
    fn image_shape(&self) -> [usize; 3];

    /// Renders one sample of `class` (pixel values in `[0, 1]`).
    ///
    /// # Panics
    ///
    /// Implementations may panic if `class >= num_classes()`.
    fn sample(&self, class: usize, rng: &mut ChaCha8Rng) -> Tensor;

    /// Generates a balanced dataset with `per_class` samples of every class.
    fn generate(&self, per_class: usize, rng: &mut ChaCha8Rng) -> Dataset {
        let [c, h, w] = self.image_shape();
        let k = self.num_classes();
        let n = per_class * k;
        let mut data = Vec::with_capacity(n * c * h * w);
        let mut labels = Vec::with_capacity(n);
        for class in 0..k {
            for _ in 0..per_class {
                let img = self.sample(class, rng);
                debug_assert_eq!(img.shape(), &[c, h, w]);
                data.extend_from_slice(img.data());
                labels.push(class);
            }
        }
        let images = Tensor::from_vec(data, &[n, c, h, w]).expect("generator shape consistent");
        Dataset::new(images, labels, k).expect("generator labels consistent")
    }
}

/// A 2-D line segment in unit coordinates (`x` right, `y` down).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Start point `(x, y)`.
    pub a: (f32, f32),
    /// End point `(x, y)`.
    pub b: (f32, f32),
}

impl Segment {
    /// Creates a segment between two unit-square points.
    pub const fn new(ax: f32, ay: f32, bx: f32, by: f32) -> Self {
        Segment {
            a: (ax, ay),
            b: (bx, by),
        }
    }

    /// Distance from point `(px, py)` to this segment.
    pub fn distance(&self, px: f32, py: f32) -> f32 {
        let (ax, ay) = self.a;
        let (bx, by) = self.b;
        let (dx, dy) = (bx - ax, by - ay);
        let len_sq = dx * dx + dy * dy;
        let t = if len_sq > 0.0 {
            (((px - ax) * dx + (py - ay) * dy) / len_sq).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let (cx, cy) = (ax + t * dx, ay + t * dy);
        ((px - cx).powi(2) + (py - cy).powi(2)).sqrt()
    }
}

/// Smoothstep falloff: 1 inside `edge0`, 0 outside `edge1`.
pub fn smoothstep(edge0: f32, edge1: f32, x: f32) -> f32 {
    if edge1 <= edge0 {
        return if x < edge0 { 1.0 } else { 0.0 };
    }
    let t = ((edge1 - x) / (edge1 - edge0)).clamp(0.0, 1.0);
    t * t * (3.0 - 2.0 * t)
}

/// A random affine jitter: rotation, isotropic scale, and translation in
/// unit coordinates, sampled once per image.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffineJitter {
    /// Rotation in radians.
    pub rotation: f32,
    /// Isotropic scale factor.
    pub scale: f32,
    /// Translation `(dx, dy)` in unit coordinates.
    pub shift: (f32, f32),
}

impl AffineJitter {
    /// Samples a jitter with the given maximum rotation (radians), scale
    /// deviation, and shift.
    pub fn sample(rng: &mut impl Rng, max_rot: f32, max_scale_dev: f32, max_shift: f32) -> Self {
        AffineJitter {
            rotation: rng.gen_range(-max_rot..=max_rot),
            scale: 1.0 + rng.gen_range(-max_scale_dev..=max_scale_dev),
            shift: (
                rng.gen_range(-max_shift..=max_shift),
                rng.gen_range(-max_shift..=max_shift),
            ),
        }
    }

    /// Identity jitter.
    pub fn identity() -> Self {
        AffineJitter {
            rotation: 0.0,
            scale: 1.0,
            shift: (0.0, 0.0),
        }
    }

    /// Maps a *pixel-space* unit coordinate back into *template* space
    /// (inverse transform, so rendering stays a simple per-pixel loop).
    pub fn inverse_map(&self, x: f32, y: f32) -> (f32, f32) {
        // Undo shift, then rotation/scale about the image center.
        let (cx, cy) = (0.5, 0.5);
        let (mut px, mut py) = (x - self.shift.0 - cx, y - self.shift.1 - cy);
        let inv_scale = 1.0 / self.scale.max(1e-3);
        let (sin, cos) = (-self.rotation).sin_cos();
        let (rx, ry) = (px * cos - py * sin, px * sin + py * cos);
        px = rx * inv_scale + cx;
        py = ry * inv_scale + cy;
        (px, py)
    }
}

/// Renders a stroke template (list of segments) into a `side`×`side`
/// grayscale plane with the given stroke thickness and affine jitter.
pub fn render_strokes(
    segments: &[Segment],
    side: usize,
    thickness: f32,
    jitter: &AffineJitter,
) -> Vec<f32> {
    let mut plane = vec![0.0f32; side * side];
    let inv = 1.0 / side as f32;
    for py in 0..side {
        for px in 0..side {
            // Pixel center in unit coordinates.
            let ux = (px as f32 + 0.5) * inv;
            let uy = (py as f32 + 0.5) * inv;
            let (tx, ty) = jitter.inverse_map(ux, uy);
            let mut dist = f32::INFINITY;
            for seg in segments {
                dist = dist.min(seg.distance(tx, ty));
            }
            plane[py * side + px] = smoothstep(thickness * 0.6, thickness * 1.4, dist);
        }
    }
    plane
}

/// Renders a `[c, h, w]` image as ASCII art (c = 1 or 3; RGB is converted
/// to luminance). Useful for inspecting faulty cases in terminal examples.
///
/// # Panics
///
/// Panics if the tensor is not rank 3 with 1 or 3 channels.
pub fn render_ascii(image: &Tensor) -> String {
    assert_eq!(image.ndim(), 3, "render_ascii expects [c, h, w]");
    let (c, h, w) = (image.shape()[0], image.shape()[1], image.shape()[2]);
    assert!(c == 1 || c == 3, "render_ascii supports 1 or 3 channels");
    const RAMP: &[u8] = b" .:-=+*#%@";
    let mut out = String::with_capacity((w + 1) * h);
    for y in 0..h {
        for x in 0..w {
            let v = if c == 1 {
                image.data()[y * w + x]
            } else {
                let r = image.data()[y * w + x];
                let g = image.data()[h * w + y * w + x];
                let b = image.data()[2 * h * w + y * w + x];
                0.299 * r + 0.587 * g + 0.114 * b
            };
            let idx = ((v.clamp(0.0, 1.0)) * (RAMP.len() - 1) as f32).round() as usize;
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmorph_tensor::init::stream_rng;

    #[test]
    fn render_ascii_maps_intensity_to_density() {
        let mut img = Tensor::zeros(&[1, 2, 2]);
        img.set(&[0, 0, 0], 1.0).unwrap();
        let art = render_ascii(&img);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].as_bytes()[0], b'@');
        assert_eq!(lines[0].as_bytes()[1], b' ');
    }

    #[test]
    fn render_ascii_handles_rgb() {
        let img = Tensor::ones(&[3, 2, 2]);
        let art = render_ascii(&img);
        assert!(art.chars().filter(|&ch| ch == '@').count() == 4);
    }

    #[test]
    #[should_panic(expected = "1 or 3 channels")]
    fn render_ascii_rejects_weird_channels() {
        let img = Tensor::ones(&[2, 2, 2]);
        let _ = render_ascii(&img);
    }

    #[test]
    fn segment_distance_basics() {
        let s = Segment::new(0.0, 0.0, 1.0, 0.0);
        assert!((s.distance(0.5, 0.0)).abs() < 1e-6);
        assert!((s.distance(0.5, 0.3) - 0.3).abs() < 1e-6);
        assert!((s.distance(2.0, 0.0) - 1.0).abs() < 1e-6);
        // Degenerate segment is a point.
        let p = Segment::new(0.5, 0.5, 0.5, 0.5);
        assert!((p.distance(0.5, 1.0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn smoothstep_monotone() {
        assert_eq!(smoothstep(0.1, 0.2, 0.05), 1.0);
        assert_eq!(smoothstep(0.1, 0.2, 0.5), 0.0);
        let mid = smoothstep(0.1, 0.2, 0.15);
        assert!(mid > 0.0 && mid < 1.0);
    }

    #[test]
    fn identity_jitter_maps_to_self() {
        let j = AffineJitter::identity();
        let (x, y) = j.inverse_map(0.3, 0.8);
        assert!((x - 0.3).abs() < 1e-6);
        assert!((y - 0.8).abs() < 1e-6);
    }

    #[test]
    fn jitter_shift_moves_template() {
        let j = AffineJitter {
            rotation: 0.0,
            scale: 1.0,
            shift: (0.1, 0.0),
        };
        let (x, _) = j.inverse_map(0.5, 0.5);
        assert!((x - 0.4).abs() < 1e-6);
    }

    #[test]
    fn render_strokes_puts_ink_on_segment() {
        let segs = [Segment::new(0.2, 0.5, 0.8, 0.5)];
        let plane = render_strokes(&segs, 16, 0.08, &AffineJitter::identity());
        // Middle row has ink, top row does not.
        let mid: f32 = plane[8 * 16..9 * 16].iter().sum();
        let top: f32 = plane[..16].iter().sum();
        assert!(mid > 3.0, "mid {mid}");
        assert!(top < 0.3, "top {top}");
    }

    #[test]
    fn jitter_sampling_is_bounded() {
        let mut rng = stream_rng(1, "jitter");
        for _ in 0..100 {
            let j = AffineJitter::sample(&mut rng, 0.3, 0.1, 0.12);
            assert!(j.rotation.abs() <= 0.3);
            assert!((j.scale - 1.0).abs() <= 0.1 + 1e-6);
            assert!(j.shift.0.abs() <= 0.12 && j.shift.1.abs() <= 0.12);
        }
    }
}
