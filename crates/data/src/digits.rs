//! MNIST stand-in: procedurally rendered digits.
//!
//! Each digit class has a stroke skeleton (a polyline set on the unit
//! square). Samples are rendered by applying a random affine jitter
//! (rotation ±, scale ±, shift ±), rasterizing with a random stroke
//! thickness, then adding brightness jitter and Gaussian pixel noise.
//! The result is a 16×16 grayscale image in `[0, 1]`.

use deepmorph_tensor::{init, Tensor};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::generator::{render_strokes, AffineJitter, DataGenerator, Segment};

/// Procedural digit generator (MNIST substitute).
#[derive(Debug, Clone)]
pub struct SynthDigits {
    side: usize,
    max_rotation: f32,
    max_scale_dev: f32,
    max_shift: f32,
    noise_std: f32,
}

impl SynthDigits {
    /// Creates a generator with the default 16×16 geometry and moderate
    /// jitter (the settings used by the Table I experiments).
    pub fn new() -> Self {
        SynthDigits {
            side: 16,
            max_rotation: 0.30,
            max_scale_dev: 0.15,
            max_shift: 0.12,
            noise_std: 0.10,
        }
    }

    /// Overrides the pixel noise level (used by robustness tests).
    pub fn with_noise(mut self, noise_std: f32) -> Self {
        self.noise_std = noise_std.max(0.0);
        self
    }

    /// Stroke skeleton of a digit class.
    ///
    /// # Panics
    ///
    /// Panics if `digit >= 10`.
    pub fn skeleton(digit: usize) -> Vec<Segment> {
        // Coordinates: x right, y down, in [0.2, 0.8] so jitter keeps the
        // glyph in frame.
        const L: f32 = 0.28; // left
        const R: f32 = 0.72; // right
        const T: f32 = 0.18; // top
        const B: f32 = 0.82; // bottom
        const M: f32 = 0.50; // middle (both axes)
        match digit {
            0 => vec![
                Segment::new(L, T, R, T),
                Segment::new(R, T, R, B),
                Segment::new(R, B, L, B),
                Segment::new(L, B, L, T),
            ],
            1 => vec![
                Segment::new(M, T, M, B),
                Segment::new(M, T, 0.38, 0.30),
                Segment::new(0.40, B, 0.60, B),
            ],
            2 => vec![
                Segment::new(L, 0.28, M, T),
                Segment::new(M, T, R, 0.28),
                Segment::new(R, 0.28, L, B),
                Segment::new(L, B, R, B),
            ],
            3 => vec![
                Segment::new(L, T, R, T),
                Segment::new(R, T, R, B),
                Segment::new(0.38, M, R, M),
                Segment::new(R, B, L, B),
            ],
            4 => vec![
                Segment::new(L, T, L, M),
                Segment::new(L, M, R, M),
                Segment::new(R, T, R, B),
            ],
            5 => vec![
                Segment::new(R, T, L, T),
                Segment::new(L, T, L, M),
                Segment::new(L, M, R, M),
                Segment::new(R, M, R, B),
                Segment::new(R, B, L, B),
            ],
            6 => vec![
                Segment::new(R, T, L, 0.30),
                Segment::new(L, 0.30, L, B),
                Segment::new(L, B, R, B),
                Segment::new(R, B, R, M),
                Segment::new(R, M, L, M),
            ],
            7 => vec![Segment::new(L, T, R, T), Segment::new(R, T, 0.42, B)],
            8 => vec![
                Segment::new(L, T, R, T),
                Segment::new(R, T, R, B),
                Segment::new(R, B, L, B),
                Segment::new(L, B, L, T),
                Segment::new(L, M, R, M),
            ],
            9 => vec![
                Segment::new(R, M, L, M),
                Segment::new(L, M, L, T),
                Segment::new(L, T, R, T),
                Segment::new(R, T, R, B),
                Segment::new(R, B, 0.40, B),
            ],
            _ => panic!("digit {digit} out of range"),
        }
    }
}

impl Default for SynthDigits {
    fn default() -> Self {
        SynthDigits::new()
    }
}

impl DataGenerator for SynthDigits {
    fn num_classes(&self) -> usize {
        10
    }

    fn image_shape(&self) -> [usize; 3] {
        [1, self.side, self.side]
    }

    fn sample(&self, class: usize, rng: &mut ChaCha8Rng) -> Tensor {
        assert!(class < 10, "digit class {class} out of range");
        let segments = SynthDigits::skeleton(class);
        let jitter =
            AffineJitter::sample(rng, self.max_rotation, self.max_scale_dev, self.max_shift);
        let thickness = rng.gen_range(0.055..0.085);
        let mut plane = render_strokes(&segments, self.side, thickness, &jitter);
        let brightness = rng.gen_range(0.75..1.0);
        for v in &mut plane {
            *v = (*v * brightness + init::gaussian(rng) * self.noise_std).clamp(0.0, 1.0);
        }
        Tensor::from_vec(plane, &[1, self.side, self.side]).expect("digit shape consistent")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmorph_tensor::init::stream_rng;
    use deepmorph_tensor::stats;

    #[test]
    fn all_skeletons_defined() {
        for d in 0..10 {
            assert!(!SynthDigits::skeleton(d).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn skeleton_rejects_non_digit() {
        let _ = SynthDigits::skeleton(10);
    }

    #[test]
    fn samples_are_in_unit_range() {
        let gen = SynthDigits::new();
        let mut rng = stream_rng(1, "digits");
        for class in 0..10 {
            let img = gen.sample(class, &mut rng);
            assert_eq!(img.shape(), &[1, 16, 16]);
            assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
            // Every digit has some ink.
            assert!(img.sum() > 2.0, "class {class} too faint");
        }
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Mean images of different classes should differ much more than
        // samples within a class — the learnability precondition.
        let gen = SynthDigits::new().with_noise(0.0);
        let mut rng = stream_rng(2, "digits");
        let mean_image = |class: usize, rng: &mut ChaCha8Rng| -> Vec<f32> {
            let mut acc = vec![0.0f32; 256];
            for _ in 0..20 {
                let img = gen.sample(class, rng);
                for (a, &v) in acc.iter_mut().zip(img.data()) {
                    *a += v / 20.0;
                }
            }
            acc
        };
        let m1 = mean_image(1, &mut rng);
        let m8 = mean_image(8, &mut rng);
        let cross = stats::sq_euclidean(&m1, &m8);
        let m1b = mean_image(1, &mut rng);
        let within = stats::sq_euclidean(&m1, &m1b);
        assert!(
            cross > within * 5.0,
            "cross {cross} should dominate within {within}"
        );
    }

    #[test]
    fn generate_is_balanced_and_deterministic() {
        let gen = SynthDigits::new();
        let mut rng1 = stream_rng(3, "digits");
        let ds1 = gen.generate(5, &mut rng1);
        assert_eq!(ds1.len(), 50);
        assert_eq!(ds1.class_histogram(), vec![5; 10]);
        let mut rng2 = stream_rng(3, "digits");
        let ds2 = gen.generate(5, &mut rng2);
        assert_eq!(ds1.images().data(), ds2.images().data());
    }
}
