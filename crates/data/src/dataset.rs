//! The labeled image dataset container.

use deepmorph_tensor::{Tensor, TensorError};
use rand::seq::SliceRandom;
use rand::Rng;

/// Which synthetic dataset family a scenario uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// MNIST stand-in: 16×16×1 procedural digits.
    Digits,
    /// CIFAR-10 stand-in: 16×16×3 procedural shape/texture composites.
    Objects,
}

impl DatasetKind {
    /// Image channel count for this dataset family.
    pub fn channels(self) -> usize {
        match self {
            DatasetKind::Digits => 1,
            DatasetKind::Objects => 3,
        }
    }

    /// Image side length (square images).
    pub fn side(self) -> usize {
        16
    }

    /// Number of target classes.
    pub fn num_classes(self) -> usize {
        10
    }

    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Digits => "synth-digits",
            DatasetKind::Objects => "synth-objects",
        }
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A labeled image dataset: NCHW images plus integer labels.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    images: Tensor,
    labels: Vec<usize>,
    num_classes: usize,
}

impl Dataset {
    /// Wraps images and labels.
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if `images` is not rank 4, the label count
    /// disagrees with the sample count, or a label is out of range.
    pub fn new(
        images: Tensor,
        labels: Vec<usize>,
        num_classes: usize,
    ) -> Result<Self, TensorError> {
        images.expect_rank(4, "dataset images")?;
        if images.shape()[0] != labels.len() {
            return Err(TensorError::LengthMismatch {
                shape: images.shape().to_vec(),
                len: labels.len(),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= num_classes) {
            return Err(TensorError::InvalidShape {
                shape: vec![bad],
                reason: "label out of range for num_classes",
            });
        }
        Ok(Dataset {
            images,
            labels,
            num_classes,
        })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` if the dataset has no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The image tensor, `[n, c, h, w]`.
    pub fn images(&self) -> &Tensor {
        &self.images
    }

    /// The labels, one per sample.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Number of target classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Image shape `[c, h, w]` (excluding batch).
    pub fn image_shape(&self) -> [usize; 3] {
        [
            self.images.shape()[1],
            self.images.shape()[2],
            self.images.shape()[3],
        ]
    }

    /// Rewrites the label of sample `idx` (used by the UTD injector).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range or `label >= num_classes`.
    pub fn set_label(&mut self, idx: usize, label: usize) {
        assert!(label < self.num_classes, "label {label} out of range");
        self.labels[idx] = label;
    }

    /// Indices of all samples with the given class label.
    pub fn class_indices(&self, class: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l == class)
            .map(|(i, _)| i)
            .collect()
    }

    /// Per-class sample counts.
    pub fn class_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.num_classes];
        for &l in &self.labels {
            hist[l] += 1;
        }
        hist
    }

    /// A new dataset containing only the samples at `indices` (in order).
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let [c, h, w] = self.image_shape();
        let sample_len = c * h * w;
        let mut data = Vec::with_capacity(indices.len() * sample_len);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            assert!(i < self.len(), "subset index {i} out of range");
            data.extend_from_slice(&self.images.data()[i * sample_len..(i + 1) * sample_len]);
            labels.push(self.labels[i]);
        }
        Dataset {
            images: Tensor::from_vec(data, &[indices.len(), c, h, w])
                .expect("subset shape consistent"),
            labels,
            num_classes: self.num_classes,
        }
    }

    /// A new dataset with the samples at `remove` dropped (used by the ITD
    /// injector). Indices may be unsorted; duplicates are ignored.
    pub fn without_indices(&self, remove: &[usize]) -> Dataset {
        let mut keep_mask = vec![true; self.len()];
        for &i in remove {
            if i < keep_mask.len() {
                keep_mask[i] = false;
            }
        }
        let keep: Vec<usize> = (0..self.len()).filter(|&i| keep_mask[i]).collect();
        self.subset(&keep)
    }

    /// Randomly permutes the samples in place.
    pub fn shuffle(&mut self, rng: &mut impl Rng) {
        let mut order: Vec<usize> = (0..self.len()).collect();
        order.shuffle(rng);
        let shuffled = self.subset(&order);
        *self = shuffled;
    }

    /// Splits into `(first, second)` where `first` receives
    /// `round(fraction * len)` samples. Sampling is stratified per class so
    /// both halves keep the class balance.
    pub fn split_stratified(&self, fraction: f32, rng: &mut impl Rng) -> (Dataset, Dataset) {
        let mut first_idx = Vec::new();
        let mut second_idx = Vec::new();
        for class in 0..self.num_classes {
            let mut idx = self.class_indices(class);
            idx.shuffle(rng);
            let take = ((idx.len() as f32) * fraction).round() as usize;
            first_idx.extend_from_slice(&idx[..take.min(idx.len())]);
            second_idx.extend_from_slice(&idx[take.min(idx.len())..]);
        }
        first_idx.shuffle(rng);
        second_idx.shuffle(rng);
        (self.subset(&first_idx), self.subset(&second_idx))
    }

    /// Concatenates two datasets (same image shape and class count).
    ///
    /// # Errors
    ///
    /// Returns a [`TensorError`] if shapes disagree.
    pub fn concat(&self, other: &Dataset) -> Result<Dataset, TensorError> {
        if self.image_shape() != other.image_shape() || self.num_classes != other.num_classes {
            return Err(TensorError::ShapeMismatch {
                lhs: self.images.shape().to_vec(),
                rhs: other.images.shape().to_vec(),
                op: "dataset concat",
            });
        }
        let [c, h, w] = self.image_shape();
        let mut data = self.images.data().to_vec();
        data.extend_from_slice(other.images.data());
        let mut labels = self.labels.clone();
        labels.extend_from_slice(&other.labels);
        let n = labels.len();
        Ok(Dataset {
            images: Tensor::from_vec(data, &[n, c, h, w])?,
            labels,
            num_classes: self.num_classes,
        })
    }

    /// Mean and standard deviation over all pixels (for normalization).
    pub fn pixel_stats(&self) -> (f32, f32) {
        let mean = self.images.mean();
        let var = self
            .images
            .data()
            .iter()
            .map(|v| (v - mean).powi(2))
            .sum::<f32>()
            / self.images.len().max(1) as f32;
        (mean, var.sqrt())
    }

    /// Standardizes pixels in place with the given statistics.
    pub fn normalize(&mut self, mean: f32, std: f32) {
        let inv = 1.0 / std.max(1e-6);
        self.images.map_inplace(|v| (v - mean) * inv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmorph_tensor::init::stream_rng;

    fn toy_dataset(n_per_class: usize, classes: usize) -> Dataset {
        let n = n_per_class * classes;
        let images =
            Tensor::from_vec((0..n * 4).map(|v| v as f32).collect(), &[n, 1, 2, 2]).unwrap();
        let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
        Dataset::new(images, labels, classes).unwrap()
    }

    #[test]
    fn new_validates() {
        let images = Tensor::zeros(&[2, 1, 2, 2]);
        assert!(Dataset::new(images.clone(), vec![0], 2).is_err()); // count
        assert!(Dataset::new(images.clone(), vec![0, 5], 2).is_err()); // range
        assert!(Dataset::new(images, vec![0, 1], 2).is_ok());
    }

    #[test]
    fn class_indices_and_histogram() {
        let ds = toy_dataset(3, 2);
        assert_eq!(ds.class_indices(0), vec![0, 2, 4]);
        assert_eq!(ds.class_histogram(), vec![3, 3]);
    }

    #[test]
    fn subset_preserves_images() {
        let ds = toy_dataset(2, 2);
        let sub = ds.subset(&[3, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.labels(), &[1, 0]);
        assert_eq!(&sub.images().data()[..4], &[12.0, 13.0, 14.0, 15.0]);
    }

    #[test]
    fn without_indices_drops() {
        let ds = toy_dataset(2, 2);
        let rest = ds.without_indices(&[0, 2, 2, 99]);
        assert_eq!(rest.len(), 2);
        assert_eq!(rest.labels(), &[1, 1]);
    }

    #[test]
    fn split_stratified_keeps_balance() {
        let ds = toy_dataset(10, 2);
        let mut rng = stream_rng(1, "split");
        let (a, b) = ds.split_stratified(0.7, &mut rng);
        assert_eq!(a.len(), 14);
        assert_eq!(b.len(), 6);
        assert_eq!(a.class_histogram(), vec![7, 7]);
        assert_eq!(b.class_histogram(), vec![3, 3]);
    }

    #[test]
    fn concat_appends() {
        let a = toy_dataset(1, 2);
        let b = toy_dataset(2, 2);
        let c = a.concat(&b).unwrap();
        assert_eq!(c.len(), 6);
        assert_eq!(c.class_histogram(), vec![3, 3]);
    }

    #[test]
    fn normalize_standardizes() {
        let mut ds = toy_dataset(5, 2);
        let (mean, std) = ds.pixel_stats();
        ds.normalize(mean, std);
        let (m2, s2) = ds.pixel_stats();
        assert!(m2.abs() < 1e-4);
        assert!((s2 - 1.0).abs() < 1e-3);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut ds = toy_dataset(5, 2);
        let before = ds.class_histogram();
        let mut rng = stream_rng(2, "shuffle");
        ds.shuffle(&mut rng);
        assert_eq!(ds.class_histogram(), before);
    }

    #[test]
    fn set_label_rewrites() {
        let mut ds = toy_dataset(1, 2);
        ds.set_label(0, 1);
        assert_eq!(ds.labels()[0], 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_label_rejects_bad_class() {
        let mut ds = toy_dataset(1, 2);
        ds.set_label(0, 9);
    }
}
