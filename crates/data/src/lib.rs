//! Synthetic datasets for the DeepMorph reproduction.
//!
//! The paper evaluates on MNIST and CIFAR-10, neither of which is available
//! offline here. Per the reproduction's substitution rule (see DESIGN.md),
//! this crate provides *procedural* lookalikes that preserve the properties
//! the experiments depend on:
//!
//! * [`digits::SynthDigits`] — 16×16×1 grayscale digits rendered from
//!   stroke skeletons with random affine jitter (MNIST stand-in; easy).
//! * [`objects::SynthObjects`] — 16×16×3 colored shape/texture composites
//!   (CIFAR-10 stand-in; harder, lower clean accuracy).
//!
//! Both expose ten structured classes whose samples live on
//! class-conditional manifolds, so the paper's defect injections (removing
//! training data of a class, mislabeling one class into another, weakening
//! the network) degrade the models the same way they do on the real
//! datasets.
//!
//! [`Dataset`] is the container used across the workspace: an NCHW image
//! tensor plus integer labels, with split/subset/relabel utilities that the
//! defect injectors build on.

pub mod dataset;
pub mod digits;
pub mod generator;
pub mod objects;

pub use dataset::{Dataset, DatasetKind};
pub use digits::SynthDigits;
pub use generator::DataGenerator;
pub use objects::SynthObjects;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::dataset::{Dataset, DatasetKind};
    pub use crate::digits::SynthDigits;
    pub use crate::generator::DataGenerator;
    pub use crate::objects::SynthObjects;
}
