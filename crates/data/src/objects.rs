//! CIFAR-10 stand-in: procedural colored shape/texture composites.
//!
//! Each class is a fixed combination of a foreground shape, a texture, and
//! a color pair. Samples randomize the shape position/size, texture phase,
//! hue jitter, and pixel noise, giving a 10-class problem that is markedly
//! harder than [`crate::digits::SynthDigits`] (mirroring the MNIST→CIFAR
//! difficulty step in the paper).

use deepmorph_tensor::{init, Tensor};
use rand::Rng;
use rand_chacha::ChaCha8Rng;

use crate::generator::DataGenerator;

/// Foreground shape of a class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shape {
    /// Filled disk.
    Disk,
    /// Axis-aligned square.
    Square,
    /// Diamond (rotated square).
    Diamond,
}

/// Texture pattern modulating the foreground.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Texture {
    /// Horizontal stripes.
    StripesH,
    /// Vertical stripes.
    StripesV,
    /// Checkerboard.
    Checker,
    /// Radial rings.
    Rings,
    /// Flat fill.
    Flat,
}

/// Procedural object generator (CIFAR-10 substitute).
#[derive(Debug, Clone)]
pub struct SynthObjects {
    side: usize,
    noise_std: f32,
    hue_jitter: f32,
}

impl SynthObjects {
    /// Creates a generator with the default 16×16 geometry and the noise
    /// level used by the Table I experiments.
    pub fn new() -> Self {
        SynthObjects {
            side: 16,
            noise_std: 0.09,
            hue_jitter: 0.06,
        }
    }

    /// Overrides the pixel noise level.
    pub fn with_noise(mut self, noise_std: f32) -> Self {
        self.noise_std = noise_std.max(0.0);
        self
    }

    /// The (shape, texture) signature of a class.
    ///
    /// # Panics
    ///
    /// Panics if `class >= 10`.
    pub fn signature(class: usize) -> (Shape, Texture) {
        assert!(class < 10, "object class {class} out of range");
        let shape = match class % 3 {
            0 => Shape::Disk,
            1 => Shape::Square,
            _ => Shape::Diamond,
        };
        let texture = match class % 5 {
            0 => Texture::StripesH,
            1 => Texture::StripesV,
            2 => Texture::Checker,
            3 => Texture::Rings,
            _ => Texture::Flat,
        };
        (shape, texture)
    }

    /// Base RGB color of a class's foreground (its hue is the class
    /// identity signal alongside shape and texture).
    pub fn base_color(class: usize) -> [f32; 3] {
        let hue = class as f32 / 10.0;
        hsv_to_rgb(hue, 0.85, 0.9)
    }

    fn shape_mask(shape: Shape, x: f32, y: f32, cx: f32, cy: f32, r: f32) -> f32 {
        let (dx, dy) = (x - cx, y - cy);
        let inside = match shape {
            Shape::Disk => (dx * dx + dy * dy).sqrt() <= r,
            Shape::Square => dx.abs() <= r && dy.abs() <= r,
            Shape::Diamond => dx.abs() + dy.abs() <= r * 1.3,
        };
        if inside {
            1.0
        } else {
            0.0
        }
    }

    fn texture_value(texture: Texture, x: f32, y: f32, phase: f32, freq: f32) -> f32 {
        match texture {
            Texture::StripesH => {
                if ((y * freq + phase) % 1.0) < 0.5 {
                    1.0
                } else {
                    0.35
                }
            }
            Texture::StripesV => {
                if ((x * freq + phase) % 1.0) < 0.5 {
                    1.0
                } else {
                    0.35
                }
            }
            Texture::Checker => {
                let cell = (((x * freq + phase) as usize) + ((y * freq + phase) as usize)) % 2;
                if cell == 0 {
                    1.0
                } else {
                    0.35
                }
            }
            Texture::Rings => {
                let r = ((x - 0.5).powi(2) + (y - 0.5).powi(2)).sqrt();
                if ((r * freq + phase) % 1.0) < 0.5 {
                    1.0
                } else {
                    0.35
                }
            }
            Texture::Flat => 1.0,
        }
    }
}

impl Default for SynthObjects {
    fn default() -> Self {
        SynthObjects::new()
    }
}

impl DataGenerator for SynthObjects {
    fn num_classes(&self) -> usize {
        10
    }

    fn image_shape(&self) -> [usize; 3] {
        [3, self.side, self.side]
    }

    fn sample(&self, class: usize, rng: &mut ChaCha8Rng) -> Tensor {
        let (shape, texture) = SynthObjects::signature(class);
        let base = SynthObjects::base_color(class);
        // Background: dim complementary color, shared across classes so it
        // carries little class information.
        let bg_level = rng.gen_range(0.12..0.25);
        let cx = 0.5 + rng.gen_range(-0.12f32..0.12);
        let cy = 0.5 + rng.gen_range(-0.12f32..0.12);
        let r = rng.gen_range(0.22f32..0.34);
        let phase = rng.gen_range(0.0f32..1.0);
        let freq = rng.gen_range(3.0f32..4.5);
        let hue_shift = rng.gen_range(-self.hue_jitter..=self.hue_jitter);
        let fg = {
            let mut c = base;
            for v in &mut c {
                *v = (*v + hue_shift).clamp(0.0, 1.0);
            }
            c
        };

        let s = self.side;
        let mut data = vec![0.0f32; 3 * s * s];
        let inv = 1.0 / s as f32;
        for py in 0..s {
            for px in 0..s {
                let x = (px as f32 + 0.5) * inv;
                let y = (py as f32 + 0.5) * inv;
                let mask = SynthObjects::shape_mask(shape, x, y, cx, cy, r);
                let tex = SynthObjects::texture_value(texture, x, y, phase, freq);
                for ch in 0..3 {
                    let fgv = fg[ch] * tex;
                    let v = mask * fgv + (1.0 - mask) * bg_level;
                    let noisy = (v + init::gaussian(rng) * self.noise_std).clamp(0.0, 1.0);
                    data[ch * s * s + py * s + px] = noisy;
                }
            }
        }
        Tensor::from_vec(data, &[3, s, s]).expect("object shape consistent")
    }
}

/// HSV → RGB conversion (h, s, v in `[0, 1]`).
pub fn hsv_to_rgb(h: f32, s: f32, v: f32) -> [f32; 3] {
    let h = (h.fract() + 1.0).fract() * 6.0;
    let i = h.floor() as i32 % 6;
    let f = h - h.floor();
    let p = v * (1.0 - s);
    let q = v * (1.0 - f * s);
    let t = v * (1.0 - (1.0 - f) * s);
    match i {
        0 => [v, t, p],
        1 => [q, v, p],
        2 => [p, v, t],
        3 => [p, q, v],
        4 => [t, p, v],
        _ => [v, p, q],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmorph_tensor::init::stream_rng;
    use deepmorph_tensor::stats;

    #[test]
    fn signatures_cover_all_classes() {
        // All 10 (shape, texture) pairs must be distinct: 3 shapes x 5
        // textures cycle with coprime periods.
        let mut seen = Vec::new();
        for class in 0..10 {
            let sig = SynthObjects::signature(class);
            assert!(!seen.contains(&sig), "duplicate signature {sig:?}");
            seen.push(sig);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn signature_rejects_bad_class() {
        let _ = SynthObjects::signature(10);
    }

    #[test]
    fn hsv_to_rgb_primaries() {
        let red = hsv_to_rgb(0.0, 1.0, 1.0);
        assert_eq!(red, [1.0, 0.0, 0.0]);
        let green = hsv_to_rgb(1.0 / 3.0, 1.0, 1.0);
        assert!((green[1] - 1.0).abs() < 1e-5 && green[0] < 1e-5);
    }

    #[test]
    fn samples_are_rgb_unit_range() {
        let gen = SynthObjects::new();
        let mut rng = stream_rng(1, "objects");
        for class in 0..10 {
            let img = gen.sample(class, &mut rng);
            assert_eq!(img.shape(), &[3, 16, 16]);
            assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn classes_are_distinct_but_noisier_than_digits() {
        let gen = SynthObjects::new().with_noise(0.0);
        let mut rng = stream_rng(2, "objects");
        let mean_image = |class: usize, rng: &mut ChaCha8Rng| -> Vec<f32> {
            let mut acc = vec![0.0f32; 3 * 256];
            for _ in 0..20 {
                let img = gen.sample(class, rng);
                for (a, &v) in acc.iter_mut().zip(img.data()) {
                    *a += v / 20.0;
                }
            }
            acc
        };
        let m0 = mean_image(0, &mut rng);
        let m5 = mean_image(5, &mut rng);
        let cross = stats::sq_euclidean(&m0, &m5);
        let m0b = mean_image(0, &mut rng);
        let within = stats::sq_euclidean(&m0, &m0b);
        assert!(cross > within * 2.0, "cross {cross} within {within}");
    }

    #[test]
    fn generate_balanced() {
        let gen = SynthObjects::new();
        let mut rng = stream_rng(3, "objects");
        let ds = gen.generate(4, &mut rng);
        assert_eq!(ds.len(), 40);
        assert_eq!(ds.class_histogram(), vec![4; 10]);
        assert_eq!(ds.image_shape(), [3, 16, 16]);
    }
}
