//! Property-based tests for dataset containers and generators.

use deepmorph_data::prelude::*;
use deepmorph_tensor::init::stream_rng;
use deepmorph_tensor::Tensor;
use proptest::prelude::*;

fn toy(n_per_class: usize, classes: usize) -> Dataset {
    let n = n_per_class * classes;
    let images = Tensor::from_vec((0..n * 4).map(|v| v as f32).collect(), &[n, 1, 2, 2]).unwrap();
    let labels: Vec<usize> = (0..n).map(|i| i % classes).collect();
    Dataset::new(images, labels, classes).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn subset_preserves_label_image_pairing(
        n_per_class in 1usize..6,
        classes in 1usize..5,
        picks in proptest::collection::vec(0usize..30, 1..12),
    ) {
        let ds = toy(n_per_class, classes);
        let picks: Vec<usize> = picks.into_iter().filter(|&i| i < ds.len()).collect();
        prop_assume!(!picks.is_empty());
        let sub = ds.subset(&picks);
        prop_assert_eq!(sub.len(), picks.len());
        for (j, &i) in picks.iter().enumerate() {
            prop_assert_eq!(sub.labels()[j], ds.labels()[i]);
            // First pixel of the image moved with the label.
            prop_assert_eq!(sub.images().data()[j * 4], ds.images().data()[i * 4]);
        }
    }

    #[test]
    fn split_partitions_every_sample(
        n_per_class in 2usize..8,
        classes in 2usize..5,
        fraction in 0.1f32..0.9,
        seed in 0u64..50,
    ) {
        let ds = toy(n_per_class, classes);
        let mut rng = stream_rng(seed, "prop-split");
        let (a, b) = ds.split_stratified(fraction, &mut rng);
        prop_assert_eq!(a.len() + b.len(), ds.len());
        // Histograms add back up.
        let ha = a.class_histogram();
        let hb = b.class_histogram();
        let h = ds.class_histogram();
        for c in 0..classes {
            prop_assert_eq!(ha[c] + hb[c], h[c]);
        }
    }

    #[test]
    fn shuffle_preserves_multiset(seed in 0u64..50) {
        let mut ds = toy(4, 3);
        let hist_before = ds.class_histogram();
        let mut sum_before: f32 = ds.images().sum();
        let mut rng = stream_rng(seed, "prop-shuffle");
        ds.shuffle(&mut rng);
        prop_assert_eq!(ds.class_histogram(), hist_before);
        sum_before -= ds.images().sum();
        prop_assert!(sum_before.abs() < 1e-3);
    }

    #[test]
    fn digits_generator_always_in_unit_range(class in 0usize..10, seed in 0u64..30) {
        let gen = SynthDigits::new();
        let mut rng = stream_rng(seed, "prop-digits");
        let img = gen.sample(class, &mut rng);
        prop_assert_eq!(img.shape(), &[1, 16, 16]);
        prop_assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        prop_assert!(img.sum() > 1.0, "class {class} produced a blank image");
    }

    #[test]
    fn objects_generator_always_in_unit_range(class in 0usize..10, seed in 0u64..30) {
        let gen = SynthObjects::new();
        let mut rng = stream_rng(seed, "prop-objects");
        let img = gen.sample(class, &mut rng);
        prop_assert_eq!(img.shape(), &[3, 16, 16]);
        prop_assert!(img.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn generation_is_seed_deterministic(per_class in 1usize..4, seed in 0u64..20) {
        let gen = SynthDigits::new();
        let a = gen.generate(per_class, &mut stream_rng(seed, "prop-det"));
        let b = gen.generate(per_class, &mut stream_rng(seed, "prop-det"));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn normalization_centers_pixels(n_per_class in 2usize..6) {
        let mut ds = toy(n_per_class, 3);
        let (mean, std) = ds.pixel_stats();
        prop_assume!(std > 1e-3);
        ds.normalize(mean, std);
        let (m2, s2) = ds.pixel_stats();
        prop_assert!(m2.abs() < 1e-3);
        prop_assert!((s2 - 1.0).abs() < 1e-2);
    }
}
