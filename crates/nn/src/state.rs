//! Serializable graph state: the state dict and the topology snapshot.
//!
//! A [`StateDict`] is the flat, ordered list of every persistent tensor in
//! a [`Graph`](crate::graph::Graph) — trainable parameters first, then the
//! non-trainable buffers layers report through
//! [`Layer::export_state`](crate::layer::Layer::export_state) (batch-norm
//! running statistics). Keys are `n{index}.{label}.p{param}` /
//! `n{index}.{label}.{buffer}`, so import can verify it is walking the
//! same graph in the same order instead of silently loading weights into
//! the wrong layer.
//!
//! A [`GraphTopology`] is the wiring snapshot (per-node label, input
//! ids, and terminal node). It cannot rebuild a graph — layers are built
//! by the model constructors in `deepmorph-models` — but it travels with
//! every saved state dict so a loader can prove the freshly built graph
//! matches the one that was saved before importing a single tensor.
//!
//! Both types encode with the `deepmorph-tensor` byte codec, so truncated
//! or corrupted files surface as typed [`CodecError`]s.

use deepmorph_tensor::io::{
    read_tensor, write_tensor, ByteReader, ByteWriter, CodecError, CodecResult,
};
use deepmorph_tensor::Tensor;

/// One named tensor of a [`StateDict`].
#[derive(Debug, Clone, PartialEq)]
pub struct StateEntry {
    /// Stable key: `n{node}.{label}.p{j}` for parameters,
    /// `n{node}.{label}.{name}` for extra layer buffers.
    pub key: String,
    /// The tensor value.
    pub value: Tensor,
}

/// Ordered collection of every persistent tensor in a graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StateDict {
    /// The entries, in graph visit order.
    pub entries: Vec<StateEntry>,
}

impl StateDict {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the dict holds no tensors.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total number of scalar values across all entries.
    pub fn scalar_count(&self) -> usize {
        self.entries.iter().map(|e| e.value.len()).sum()
    }

    /// Appends the dict to a payload.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.entries.len() as u64);
        for entry in &self.entries {
            w.put_str(&entry.key);
            write_tensor(w, &entry.value);
        }
    }

    /// Reads a dict written by [`StateDict::encode`].
    ///
    /// # Errors
    ///
    /// Propagates codec errors (truncation, invalid shapes).
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<Self> {
        let n = r.get_len("state dict length")?;
        let mut entries = Vec::new();
        for _ in 0..n {
            let key = r.get_str("state entry key")?;
            let value = read_tensor(r)?;
            entries.push(StateEntry { key, value });
        }
        Ok(StateDict { entries })
    }
}

/// The wiring of one graph node, for topology verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopoNode {
    /// The node's label.
    pub label: String,
    /// Input node indexes; `u64::MAX` denotes the graph input.
    pub inputs: Vec<u64>,
}

/// A serializable snapshot of a graph's structure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphTopology {
    /// Per-node wiring, in topological order.
    pub nodes: Vec<TopoNode>,
    /// Index of the terminal node.
    pub output: u64,
}

impl GraphTopology {
    /// Appends the topology to a payload.
    pub fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.nodes.len() as u64);
        for node in &self.nodes {
            w.put_str(&node.label);
            w.put_u64(node.inputs.len() as u64);
            for &input in &node.inputs {
                w.put_u64(input);
            }
        }
        w.put_u64(self.output);
    }

    /// Reads a topology written by [`GraphTopology::encode`].
    ///
    /// # Errors
    ///
    /// Propagates codec errors.
    pub fn decode(r: &mut ByteReader<'_>) -> CodecResult<Self> {
        let n = r.get_len("topology node count")?;
        let mut nodes = Vec::new();
        for _ in 0..n {
            let label = r.get_str("topology label")?;
            let arity = r.get_len("topology arity")?;
            if arity > 8 {
                return Err(CodecError::Invalid {
                    context: format!("topology node arity {arity} is implausible"),
                });
            }
            let mut inputs = Vec::with_capacity(arity);
            for _ in 0..arity {
                inputs.push(r.get_u64("topology input")?);
            }
            nodes.push(TopoNode { label, inputs });
        }
        let output = r.get_u64("topology output")?;
        Ok(GraphTopology { nodes, output })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dict() -> StateDict {
        StateDict {
            entries: vec![
                StateEntry {
                    key: "n0.dense[2->3].p0".into(),
                    value: Tensor::from_vec((0..6).map(|v| v as f32).collect(), &[3, 2]).unwrap(),
                },
                StateEntry {
                    key: "n0.dense[2->3].p1".into(),
                    value: Tensor::zeros(&[3]),
                },
            ],
        }
    }

    #[test]
    fn state_dict_round_trips() {
        let dict = sample_dict();
        let mut w = ByteWriter::new();
        dict.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        let back = StateDict::decode(&mut r).unwrap();
        assert_eq!(back, dict);
        assert!(r.is_exhausted());
        assert_eq!(back.scalar_count(), 9);
    }

    #[test]
    fn truncated_dict_is_typed() {
        let dict = sample_dict();
        let mut w = ByteWriter::new();
        dict.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..bytes.len() - 3]);
        assert!(matches!(
            StateDict::decode(&mut r).unwrap_err(),
            CodecError::Truncated { .. }
        ));
    }

    #[test]
    fn topology_round_trips() {
        let topo = GraphTopology {
            nodes: vec![
                TopoNode {
                    label: "conv1".into(),
                    inputs: vec![u64::MAX],
                },
                TopoNode {
                    label: "add".into(),
                    inputs: vec![0, u64::MAX],
                },
            ],
            output: 1,
        };
        let mut w = ByteWriter::new();
        topo.encode(&mut w);
        let bytes = w.into_bytes();
        let back = GraphTopology::decode(&mut ByteReader::new(&bytes)).unwrap();
        assert_eq!(back, topo);
    }
}
