//! Batch normalization.

use deepmorph_tensor::{workspace, Tensor};

use crate::dense::single_input;
use crate::layer::{Grads, Layer, Mode, Param};
use crate::{NnError, Result};

/// Per-channel batch normalization for NCHW tensors.
///
/// Training mode normalizes with batch statistics and updates exponential
/// running averages; evaluation mode uses the running averages, so
/// inference is deterministic.
#[derive(Debug)]
pub struct BatchNorm2d {
    name: String,
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    /// Normalized activations of the last training forward (workspace
    /// buffer, recycled on replacement).
    cached_x_hat: Option<Tensor>,
    /// Per-channel `1/σ` of the last training forward (persistent buffer).
    inv_std: Vec<f32>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer with γ=1, β=0.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            name: format!("batchnorm[{channels}]"),
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            cached_x_hat: None,
            inv_std: Vec::new(),
        }
    }

    /// Channel count this layer normalizes.
    pub fn channels(&self) -> usize {
        self.channels
    }

    fn check_input(&self, x: &Tensor) -> Result<(usize, usize, usize)> {
        x.expect_rank(4, "batchnorm")?;
        if x.shape()[1] != self.channels {
            return Err(NnError::Tensor(
                deepmorph_tensor::TensorError::ShapeMismatch {
                    lhs: x.shape().to_vec(),
                    rhs: vec![0, self.channels, 0, 0],
                    op: "batchnorm channels",
                },
            ));
        }
        Ok((x.shape()[0], x.shape()[2], x.shape()[3]))
    }
}

impl Layer for BatchNorm2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Result<Tensor> {
        let x = single_input(inputs, &self.name)?;
        let (n, h, w) = self.check_input(x)?;
        let c = self.channels;
        let plane = h * w;
        let m = (n * plane) as f32;
        // Every element of `out` (and, in training, `x_hat`) is written
        // below, so both are raw workspace checkouts.
        let mut out = workspace::tensor_raw(x.shape());

        match mode {
            Mode::Train => {
                let mut x_hat = workspace::tensor_raw(x.shape());
                self.inv_std.clear();
                self.inv_std.resize(c, 0.0);
                for (ch, istd_slot) in self.inv_std.iter_mut().enumerate() {
                    // Batch mean/var over (n, h, w) for this channel.
                    let mut mean = 0.0;
                    for i in 0..n {
                        let base = (i * c + ch) * plane;
                        for p in 0..plane {
                            mean += x.data()[base + p];
                        }
                    }
                    mean /= m;
                    let mut var = 0.0;
                    for i in 0..n {
                        let base = (i * c + ch) * plane;
                        for p in 0..plane {
                            let d = x.data()[base + p] - mean;
                            var += d * d;
                        }
                    }
                    var /= m;
                    let istd = 1.0 / (var + self.eps).sqrt();
                    *istd_slot = istd;
                    let g = self.gamma.value.data()[ch];
                    let b = self.beta.value.data()[ch];
                    for i in 0..n {
                        let base = (i * c + ch) * plane;
                        for p in 0..plane {
                            let d = x.data()[base + p] - mean;
                            let xh = d * istd;
                            x_hat.data_mut()[base + p] = xh;
                            out.data_mut()[base + p] = g * xh + b;
                        }
                    }
                    self.running_mean[ch] =
                        (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean;
                    self.running_var[ch] =
                        (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var;
                }
                workspace::recycle_opt(self.cached_x_hat.replace(x_hat));
            }
            Mode::Eval => {
                for ch in 0..c {
                    let istd = 1.0 / (self.running_var[ch] + self.eps).sqrt();
                    let mean = self.running_mean[ch];
                    let g = self.gamma.value.data()[ch];
                    let b = self.beta.value.data()[ch];
                    for i in 0..n {
                        let base = (i * c + ch) * plane;
                        for p in 0..plane {
                            out.data_mut()[base + p] = g * (x.data()[base + p] - mean) * istd + b;
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Grads> {
        let x_hat = self
            .cached_x_hat
            .as_ref()
            .ok_or_else(|| NnError::MissingActivation {
                layer: self.name.clone(),
            })?;
        let (n, h, w) = self.check_input(grad)?;
        let c = self.channels;
        if self.inv_std.len() != c || x_hat.len() != grad.len() {
            return Err(NnError::MissingActivation {
                layer: self.name.clone(),
            });
        }
        let plane = h * w;
        let m = (n * plane) as f32;
        // Every element of `dx` is written below.
        let mut dx = workspace::tensor_raw(grad.shape());

        for ch in 0..c {
            let g = self.gamma.value.data()[ch];
            let istd = self.inv_std[ch];
            // Accumulate dgamma, dbeta, and the two reduction terms the dx
            // formula needs.
            let mut dgamma = 0.0;
            let mut dbeta = 0.0;
            let mut sum_dxhat = 0.0;
            let mut sum_dxhat_xhat = 0.0;
            for i in 0..n {
                let base = (i * c + ch) * plane;
                for p in 0..plane {
                    let dy = grad.data()[base + p];
                    let xh = x_hat.data()[base + p];
                    dgamma += dy * xh;
                    dbeta += dy;
                    let dxhat = dy * g;
                    sum_dxhat += dxhat;
                    sum_dxhat_xhat += dxhat * xh;
                }
            }
            self.gamma.grad.data_mut()[ch] += dgamma;
            self.beta.grad.data_mut()[ch] += dbeta;
            // dx = (istd / m) * (m*dxhat - sum(dxhat) - xhat * sum(dxhat*xhat))
            for i in 0..n {
                let base = (i * c + ch) * plane;
                for p in 0..plane {
                    let dy = grad.data()[base + p];
                    let xh = x_hat.data()[base + p];
                    let dxhat = dy * g;
                    dx.data_mut()[base + p] =
                        (istd / m) * (m * dxhat - sum_dxhat - xh * sum_dxhat_xhat);
                }
            }
        }
        Ok(Grads::one(dx))
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.gamma);
        visitor(&mut self.beta);
    }

    fn clear_cache(&mut self) {
        workspace::recycle_opt(self.cached_x_hat.take());
        self.inv_std = Vec::new();
    }

    fn export_state(&self) -> Vec<(String, Vec<f32>)> {
        vec![
            ("running_mean".to_string(), self.running_mean.clone()),
            ("running_var".to_string(), self.running_var.clone()),
        ]
    }

    fn import_state(&mut self, entries: &[(String, Vec<f32>)]) -> Result<()> {
        let mismatch = |reason: String| NnError::StateMismatch { reason };
        if entries.len() != 2 {
            return Err(mismatch(format!(
                "`{}` expects 2 state buffers, got {}",
                self.name,
                entries.len()
            )));
        }
        for (entry, expected) in entries.iter().zip(["running_mean", "running_var"]) {
            if entry.0 != expected {
                return Err(mismatch(format!(
                    "`{}` expected buffer `{expected}`, got `{}`",
                    self.name, entry.0
                )));
            }
            if entry.1.len() != self.channels {
                return Err(mismatch(format!(
                    "`{}` buffer `{expected}` has {} values for {} channels",
                    self.name,
                    entry.1.len(),
                    self.channels
                )));
            }
        }
        self.running_mean.copy_from_slice(&entries[0].1);
        self.running_var.copy_from_slice(&entries[1].1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_input() -> Tensor {
        Tensor::from_vec(
            (0..24)
                .map(|v| ((v * 13) % 17) as f32 * 0.3 - 2.0)
                .collect(),
            &[2, 2, 2, 3],
        )
        .unwrap()
    }

    #[test]
    fn train_output_is_standardized() {
        let mut bn = BatchNorm2d::new(2);
        let x = sample_input();
        let y = bn.forward(&[&x], Mode::Train).unwrap();
        // Per-channel mean ≈ 0, var ≈ 1 (γ=1, β=0).
        for ch in 0..2 {
            let mut vals = Vec::new();
            for i in 0..2 {
                for p in 0..6 {
                    vals.push(y.data()[(i * 2 + ch) * 6 + p]);
                }
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_statistics() {
        let mut bn = BatchNorm2d::new(2);
        let x = sample_input();
        // Before any training step, running stats are (0, 1): eval ≈ identity.
        let y = bn.forward(&[&x], Mode::Eval).unwrap();
        for (a, b) in y.data().iter().zip(x.data()) {
            assert!((a - b).abs() < 1e-3);
        }
        // After many train passes running stats converge to batch stats.
        for _ in 0..200 {
            let _ = bn.forward(&[&x], Mode::Train).unwrap();
        }
        let y2 = bn.forward(&[&x], Mode::Eval).unwrap();
        let y_train = bn.forward(&[&x], Mode::Train).unwrap();
        for (a, b) in y2.data().iter().zip(y_train.data()) {
            assert!((a - b).abs() < 0.05, "{a} vs {b}");
        }
    }

    #[test]
    fn gradient_check() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::from_vec(
            vec![0.5, -1.0, 2.0, 0.3, -0.7, 1.1, 0.0, 0.9],
            &[2, 1, 2, 2],
        )
        .unwrap();
        let _ = bn.forward(&[&x], Mode::Train).unwrap();
        // Weighted loss so the gradient isn't trivially zero (sum of a
        // standardized batch is 0 regardless of input).
        let wts: Vec<f32> = (0..8).map(|i| (i as f32 * 0.7).sin() + 0.2).collect();
        let gout = Tensor::from_vec(wts.clone(), &[2, 1, 2, 2]).unwrap();
        let gin = bn.backward(&gout).unwrap().into_first();

        let eps = 1e-2;
        for i in 0..8 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let loss = |bn: &mut BatchNorm2d, t: &Tensor| {
                let y = bn.forward(&[t], Mode::Train).unwrap();
                y.data().iter().zip(&wts).map(|(a, b)| a * b).sum::<f32>()
            };
            let mut bn2 = BatchNorm2d::new(1);
            let num = (loss(&mut bn2, &xp) - loss(&mut bn2, &xm)) / (2.0 * eps);
            assert!(
                (num - gin.data()[i]).abs() < 0.02,
                "grad {i}: numeric {num} analytic {}",
                gin.data()[i]
            );
        }
    }

    #[test]
    fn gamma_beta_grads_accumulate() {
        let mut bn = BatchNorm2d::new(1);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let _ = bn.forward(&[&x], Mode::Train).unwrap();
        let _ = bn.backward(&Tensor::ones(&[1, 1, 2, 2])).unwrap();
        // dbeta = sum(dy) = 4
        assert!((bn.beta.grad.data()[0] - 4.0).abs() < 1e-5);
        // dgamma = sum(dy*xhat) = sum(xhat) ≈ 0 for a standardized batch
        assert!(bn.gamma.grad.data()[0].abs() < 1e-4);
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::zeros(&[1, 2, 2, 2]);
        assert!(bn.forward(&[&x], Mode::Train).is_err());
    }
}
