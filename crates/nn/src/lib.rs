//! Neural-network framework substrate for the DeepMorph reproduction.
//!
//! The paper builds DeepMorph on TensorFlow; this crate replaces the parts
//! of TensorFlow the reproduction needs:
//!
//! * [`layer`] — the [`Layer`](layer::Layer) trait plus trainable
//!   [`Param`](layer::Param)s,
//! * concrete layers: [`Dense`](dense::Dense), [`Conv2d`](conv::Conv2d),
//!   pooling, [`ReLU`](activation::ReLU), [`BatchNorm2d`](norm::BatchNorm2d),
//!   [`Flatten`](shape_ops::Flatten), residual [`Add`](merge::Add) and
//!   channel [`ConcatChannels`](merge::ConcatChannels) merges,
//!   [`Dropout`](dropout::Dropout),
//! * [`graph`] — a DAG executor with reverse-mode differentiation,
//! * [`state`] — serializable graph state: keyed state dicts
//!   ([`Graph::export_state`](graph::Graph::export_state) /
//!   [`Graph::import_state`](graph::Graph::import_state)) and topology
//!   snapshots for save/load verification,
//! * [`loss`] — softmax cross-entropy,
//! * [`optim`] — SGD (momentum, weight decay) and Adam,
//! * [`train`] — mini-batch training loop, and
//! * [`metrics`] — accuracy and confusion matrices.
//!
//! Everything is CPU, `f32`, and deterministic given a seed.
//!
//! # Example: train a tiny MLP
//!
//! ```
//! use deepmorph_nn::prelude::*;
//! use deepmorph_tensor::{init, Tensor};
//!
//! # fn main() -> Result<(), NnError> {
//! let mut rng = init::stream_rng(0, "doc");
//! let mut gb = GraphBuilder::new();
//! let x = gb.input();
//! let h = gb.add_layer(Dense::new(2, 8, &mut rng), &[x])?;
//! let h = gb.add_layer(ReLU::new(), &[h])?;
//! let out = gb.add_layer(Dense::new(8, 2, &mut rng), &[h])?;
//! let mut graph = gb.build(out)?;
//!
//! // XOR-ish toy data.
//! let xs = Tensor::from_vec(vec![0., 0., 0., 1., 1., 0., 1., 1.], &[4, 2])?;
//! let ys = vec![0usize, 1, 1, 0];
//! let mut trainer = Trainer::new(TrainConfig {
//!     epochs: 200,
//!     batch_size: 4,
//!     ..TrainConfig::default()
//! });
//! trainer.fit(&mut graph, &xs, &ys, &mut rng)?;
//! let acc = evaluate_accuracy(&mut graph, &xs, &ys, 4)?;
//! assert!(acc > 0.9, "accuracy {acc}");
//! # Ok(())
//! # }
//! ```

pub mod activation;
pub mod conv;
pub mod dense;
pub mod dropout;
mod error;
pub mod graph;
pub mod layer;
pub mod loss;
pub mod merge;
pub mod metrics;
pub mod norm;
pub mod optim;
pub mod pool;
pub mod shape_ops;
pub mod state;
pub mod train;

pub use error::NnError;

/// Result alias used across this crate.
pub type Result<T> = std::result::Result<T, NnError>;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::activation::ReLU;
    pub use crate::conv::Conv2d;
    pub use crate::dense::Dense;
    pub use crate::dropout::Dropout;
    pub use crate::graph::{Graph, GraphBuilder, NodeId};
    pub use crate::layer::{Grads, Layer, Mode, Param};
    pub use crate::loss::SoftmaxCrossEntropy;
    pub use crate::merge::{Add, ConcatChannels};
    pub use crate::metrics::{accuracy, confusion_matrix, Metrics};
    pub use crate::norm::BatchNorm2d;
    pub use crate::optim::{Adam, Optimizer, Sgd};
    pub use crate::pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
    pub use crate::shape_ops::Flatten;
    pub use crate::state::{GraphTopology, StateDict, StateEntry};
    pub use crate::train::{clip_gradients, evaluate_accuracy, TrainConfig, TrainReport, Trainer};
    pub use crate::{NnError, Result as NnResult};
    pub use deepmorph_tensor::backend::quant::Precision;
    pub use deepmorph_tensor::backend::{BackendKind, ComputeCtx};
}
