//! Shape-changing layers.

use deepmorph_tensor::{Shape, Tensor};

use crate::dense::single_input;
use crate::layer::{Grads, Layer, Mode};
use crate::{NnError, Result};

/// Flattens `[n, c, h, w]` (or any rank ≥ 2) to `[n, features]`.
#[derive(Debug, Default)]
pub struct Flatten {
    original_shape: Option<Shape>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten {
            original_shape: None,
        }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &str {
        "flatten"
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Result<Tensor> {
        let x = single_input(inputs, "flatten")?;
        if x.ndim() < 2 {
            return Err(NnError::Tensor(
                deepmorph_tensor::TensorError::RankMismatch {
                    expected: 2,
                    actual: x.ndim(),
                    op: "flatten",
                },
            ));
        }
        let n = x.shape()[0];
        let features: usize = x.shape()[1..].iter().product();
        if mode == Mode::Train {
            self.original_shape = Some(Shape::from_slice(x.shape()));
        }
        x.reshape(&[n, features]).map_err(Into::into)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Grads> {
        let shape = self
            .original_shape
            .as_ref()
            .ok_or_else(|| NnError::MissingActivation {
                layer: "flatten".into(),
            })?;
        Ok(Grads::one(grad.reshape(shape.as_slice())?))
    }

    fn clear_cache(&mut self) {
        self.original_shape = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_round_trip() {
        let mut l = Flatten::new();
        let x = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 2, 2]).unwrap();
        let y = l.forward(&[&x], Mode::Train).unwrap();
        assert_eq!(y.shape(), &[2, 12]);
        let g = l.backward(&y).unwrap().into_first();
        assert_eq!(g.shape(), x.shape());
        assert_eq!(g.data(), x.data());
    }

    #[test]
    fn flatten_rejects_rank1() {
        let mut l = Flatten::new();
        let x = Tensor::from_slice(&[1.0, 2.0]);
        assert!(l.forward(&[&x], Mode::Eval).is_err());
    }
}
