//! The [`Layer`] trait and trainable [`Param`]s.

use deepmorph_tensor::Tensor;

use crate::Result;

/// Execution mode: training (batch statistics, dropout active) or
/// evaluation (running statistics, dropout off).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training-time forward: layers may cache activations and use batch
    /// statistics.
    Train,
    /// Inference-time forward: deterministic, uses running statistics.
    Eval,
}

/// A trainable parameter: a value and its accumulated gradient.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient of the loss with respect to the value, accumulated by the
    /// most recent backward pass.
    pub grad: Tensor,
}

impl Param {
    /// Wraps a value, allocating a zero gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }

    /// Resets the gradient to zero, keeping the allocation.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// `true` if the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// A differentiable computation node.
///
/// Layers are stateful: `forward` caches whatever the matching `backward`
/// needs. The graph executor guarantees `backward` is called at most once
/// after each `forward`, in reverse topological order.
///
/// Implementors report trainable parameters through [`Layer::visit_params`];
/// the optimizer relies on the visit order being stable across calls.
pub trait Layer {
    /// Short human-readable layer name (used in errors and reports).
    fn name(&self) -> &str;

    /// Number of inputs this layer consumes (1 for most, 2 for merges).
    fn arity(&self) -> usize {
        1
    }

    /// Computes the layer output.
    ///
    /// # Errors
    ///
    /// Returns an error if input shapes are inconsistent with the layer
    /// configuration.
    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Result<Tensor>;

    /// Propagates `grad` (w.r.t. the layer output) to gradients w.r.t. each
    /// input, accumulating parameter gradients as a side effect.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::MissingActivation`] if `forward` has not
    /// been run, or shape errors on inconsistent gradients.
    fn backward(&mut self, grad: &Tensor) -> Result<Vec<Tensor>>;

    /// Visits every trainable parameter (stable order).
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        let _ = visitor;
    }

    /// Total number of trainable scalars.
    fn param_count(&mut self) -> usize {
        let mut count = 0;
        self.visit_params(&mut |p| count += p.len());
        count
    }

    /// Drops cached activations to free memory (called between epochs for
    /// large sweeps). Layers with no cache need not override.
    fn clear_cache(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_tracks_shape() {
        let p = Param::new(Tensor::ones(&[2, 3]));
        assert_eq!(p.grad.shape(), &[2, 3]);
        assert_eq!(p.len(), 6);
        assert!(!p.is_empty());
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones(&[4]));
        p.grad.fill(3.0);
        p.zero_grad();
        assert!(p.grad.data().iter().all(|&v| v == 0.0));
    }
}
