//! The [`Layer`] trait, trainable [`Param`]s, and the inline [`Grads`]
//! container backward passes return.

use deepmorph_tensor::backend::quant::{f16_round_slice, Precision};
use deepmorph_tensor::backend::ComputeCtx;
use deepmorph_tensor::Tensor;

use crate::Result;

/// Execution mode: training (batch statistics, dropout active) or
/// evaluation (running statistics, dropout off).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training-time forward: layers may cache activations and use batch
    /// statistics.
    Train,
    /// Inference-time forward: deterministic, uses running statistics.
    Eval,
}

/// A trainable parameter: a value and its accumulated gradient.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current parameter value.
    pub value: Tensor,
    /// Gradient of the loss with respect to the value, accumulated by the
    /// most recent backward pass.
    pub grad: Tensor,
}

impl Param {
    /// Wraps a value, allocating a zero gradient of the same shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }

    /// Resets the gradient to zero, keeping the allocation.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// `true` if the parameter holds no elements.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

/// Input gradients produced by one [`Layer::backward`] call.
///
/// Layers have arity ≤ 2, so the gradients are stored inline — returning
/// them costs no heap allocation, which keeps the backward hot loop
/// allocation-free (`tests/alloc_regression.rs`). Iterate with
/// `for g in grads` (yields owned tensors in input order).
#[derive(Debug, Default)]
pub struct Grads {
    slots: [Option<Tensor>; 2],
}

impl Grads {
    /// Gradients of a unary layer.
    pub fn one(g: Tensor) -> Self {
        Grads {
            slots: [Some(g), None],
        }
    }

    /// Gradients of a binary (merge) layer, in input order.
    pub fn two(g0: Tensor, g1: Tensor) -> Self {
        Grads {
            slots: [Some(g0), Some(g1)],
        }
    }

    /// Number of gradients held.
    pub fn len(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// `true` when no gradients are held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow the `i`-th input gradient.
    pub fn get(&self, i: usize) -> Option<&Tensor> {
        self.slots.get(i).and_then(Option::as_ref)
    }

    /// Consumes the container, returning the first gradient.
    ///
    /// # Panics
    ///
    /// Panics if the container is empty.
    pub fn into_first(mut self) -> Tensor {
        self.slots[0].take().expect("Grads::into_first on empty")
    }
}

impl IntoIterator for Grads {
    type Item = Tensor;
    type IntoIter = std::iter::Flatten<std::array::IntoIter<Option<Tensor>, 2>>;

    fn into_iter(self) -> Self::IntoIter {
        self.slots.into_iter().flatten()
    }
}

/// A differentiable computation node.
///
/// Layers are stateful: `forward` caches whatever the matching `backward`
/// needs. The graph executor guarantees `backward` is called at most once
/// after each `forward`, in reverse topological order.
///
/// Implementors report trainable parameters through [`Layer::visit_params`];
/// the optimizer relies on the visit order being stable across calls.
///
/// Layers are `Send`: they own plain tensor data, so a built graph can
/// move between threads — serving workers build replicas on their own
/// threads, and the serving layer keeps prepared (instrumented) models
/// inside shared state that connection threads access under a lock.
pub trait Layer: Send {
    /// Short human-readable layer name (used in errors and reports).
    fn name(&self) -> &str;

    /// Number of inputs this layer consumes (1 for most, 2 for merges).
    fn arity(&self) -> usize {
        1
    }

    /// Computes the layer output.
    ///
    /// # Errors
    ///
    /// Returns an error if input shapes are inconsistent with the layer
    /// configuration.
    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Result<Tensor>;

    /// Propagates `grad` (w.r.t. the layer output) to gradients w.r.t. each
    /// input, accumulating parameter gradients as a side effect.
    ///
    /// Returned tensors should come from the thread's workspace arena
    /// ([`deepmorph_tensor::workspace`]); the graph executor recycles them
    /// after consumption.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::MissingActivation`] if `forward` has not
    /// been run, or shape errors on inconsistent gradients.
    fn backward(&mut self, grad: &Tensor) -> Result<Grads>;

    /// Visits every trainable parameter (stable order).
    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        let _ = visitor;
    }

    /// Total number of trainable scalars.
    fn param_count(&mut self) -> usize {
        let mut count = 0;
        self.visit_params(&mut |p| count += p.len());
        count
    }

    /// Drops cached activations to free memory (called between epochs for
    /// large sweeps). Layers with no cache need not override.
    fn clear_cache(&mut self) {}

    /// Installs the compute context this layer runs its kernels on.
    ///
    /// [`Graph::bind_compute`](crate::graph::Graph::bind_compute) calls
    /// this on every node; layers with no dense products (activations,
    /// pooling, reshapes) need not override — their elementwise work is
    /// backend-independent by construction.
    fn bind_compute(&mut self, ctx: &ComputeCtx) {
        let _ = ctx;
    }

    /// Re-expresses this layer's parameters at a serving precision.
    ///
    /// Lossy and irreversible — call it only on inference replicas
    /// (training and diagnosis stay f32). The default rounds every
    /// trainable parameter through IEEE binary16 for [`Precision::F16`]
    /// and [`Precision::I8`] (layers with a hot `x·Wᵀ` product override to
    /// build an integer weight path for `I8`); [`Precision::F32`] restores
    /// nothing and is a no-op.
    ///
    /// # Errors
    ///
    /// Implementations may reject precisions they cannot represent; the
    /// provided implementations always succeed.
    fn apply_precision(&mut self, precision: Precision) -> Result<()> {
        if precision != Precision::F32 {
            self.visit_params(&mut |p| f16_round_slice(p.value.data_mut()));
        }
        Ok(())
    }

    /// Persistent non-trainable buffers that must travel with the
    /// parameters for inference to round-trip exactly (batch-norm running
    /// statistics). Activation caches, dropout masks, and optimizer state
    /// are *not* state: they are rebuilt by the next forward/fit. Layers
    /// with no such buffers need not override.
    fn export_state(&self) -> Vec<(String, Vec<f32>)> {
        Vec::new()
    }

    /// Restores buffers produced by [`Layer::export_state`], in the same
    /// order.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::StateMismatch`] if the entries disagree
    /// with what this layer exports (wrong names, counts, or lengths).
    fn import_state(&mut self, entries: &[(String, Vec<f32>)]) -> Result<()> {
        if entries.is_empty() {
            Ok(())
        } else {
            Err(crate::NnError::StateMismatch {
                reason: format!(
                    "layer `{}` holds no extra state but received {} entries",
                    self.name(),
                    entries.len()
                ),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_tracks_shape() {
        let p = Param::new(Tensor::ones(&[2, 3]));
        assert_eq!(p.grad.shape(), &[2, 3]);
        assert_eq!(p.len(), 6);
        assert!(!p.is_empty());
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Tensor::ones(&[4]));
        p.grad.fill(3.0);
        p.zero_grad();
        assert!(p.grad.data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn grads_container_round_trips() {
        let g = Grads::one(Tensor::ones(&[2]));
        assert_eq!(g.len(), 1);
        assert!(g.get(1).is_none());
        assert_eq!(g.into_first().len(), 2);

        let g = Grads::two(Tensor::ones(&[1]), Tensor::zeros(&[3]));
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
        let items: Vec<Tensor> = g.into_iter().collect();
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].len(), 3);
    }
}
