use std::error::Error;
use std::fmt;

use deepmorph_tensor::TensorError;

/// Errors produced by graph construction, execution, and training.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// An underlying tensor operation failed (shape bug in a layer).
    Tensor(TensorError),
    /// A layer received the wrong number of inputs.
    ArityMismatch {
        /// Layer name.
        layer: String,
        /// Inputs the layer expects.
        expected: usize,
        /// Inputs it was wired with.
        actual: usize,
    },
    /// A graph node referenced an id that does not exist (or would create a
    /// cycle by referencing a later node).
    InvalidNode {
        /// The offending node index.
        id: usize,
        /// Why it is invalid.
        reason: &'static str,
    },
    /// `backward` was called before `forward`, or a cached activation was
    /// missing.
    MissingActivation {
        /// Layer name.
        layer: String,
    },
    /// Label vector and batch size disagree, or a label is out of range.
    InvalidLabels {
        /// Description of the problem.
        reason: String,
    },
    /// Training was configured with an empty dataset or zero batch size.
    InvalidTrainConfig {
        /// Description of the problem.
        reason: String,
    },
    /// A state dict disagrees with the graph it is being imported into
    /// (wrong keys, shapes, or entry counts).
    StateMismatch {
        /// Description of the disagreement.
        reason: String,
    },
    /// A model specification is internally inconsistent (zero-sized input,
    /// no classes, …) and cannot be built. Surfaced as a typed error so a
    /// long-running process fed a corrupt spec reports it instead of
    /// aborting.
    InvalidSpec {
        /// Description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::ArityMismatch {
                layer,
                expected,
                actual,
            } => write!(f, "layer `{layer}` expects {expected} inputs, got {actual}"),
            NnError::InvalidNode { id, reason } => {
                write!(f, "invalid node reference {id}: {reason}")
            }
            NnError::MissingActivation { layer } => write!(
                f,
                "layer `{layer}` has no cached activation (forward not run?)"
            ),
            NnError::InvalidLabels { reason } => write!(f, "invalid labels: {reason}"),
            NnError::InvalidTrainConfig { reason } => {
                write!(f, "invalid training configuration: {reason}")
            }
            NnError::StateMismatch { reason } => {
                write!(f, "state dict mismatch: {reason}")
            }
            NnError::InvalidSpec { reason } => {
                write!(f, "invalid model spec: {reason}")
            }
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_errors_convert() {
        let te = TensorError::InvalidShape {
            shape: vec![0],
            reason: "zero",
        };
        let ne: NnError = te.clone().into();
        assert!(matches!(ne, NnError::Tensor(ref inner) if *inner == te));
        assert!(ne.to_string().contains("tensor error"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
