//! Classification metrics.

/// Fraction of predictions matching the labels (0 for empty input).
///
/// # Panics
///
/// Debug-asserts that the slices have equal length.
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f32 {
    debug_assert_eq!(predictions.len(), labels.len());
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f32 / predictions.len() as f32
}

/// Row-major confusion matrix: `matrix[true][predicted]` counts.
///
/// Entries outside `[0, num_classes)` are ignored.
pub fn confusion_matrix(
    predictions: &[usize],
    labels: &[usize],
    num_classes: usize,
) -> Vec<Vec<usize>> {
    let mut matrix = vec![vec![0usize; num_classes]; num_classes];
    for (&p, &l) in predictions.iter().zip(labels) {
        if p < num_classes && l < num_classes {
            matrix[l][p] += 1;
        }
    }
    matrix
}

/// Aggregated per-class classification metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// Overall accuracy.
    pub accuracy: f32,
    /// Per-class precision (0 when the class is never predicted).
    pub precision: Vec<f32>,
    /// Per-class recall (0 when the class never occurs).
    pub recall: Vec<f32>,
    /// The confusion matrix the metrics were derived from.
    pub confusion: Vec<Vec<usize>>,
}

impl Metrics {
    /// Computes metrics from predictions and ground-truth labels.
    pub fn compute(predictions: &[usize], labels: &[usize], num_classes: usize) -> Self {
        let confusion = confusion_matrix(predictions, labels, num_classes);
        let mut precision = vec![0.0; num_classes];
        let mut recall = vec![0.0; num_classes];
        for c in 0..num_classes {
            let tp = confusion[c][c];
            let predicted: usize = (0..num_classes).map(|t| confusion[t][c]).sum();
            let actual: usize = confusion[c].iter().sum();
            if predicted > 0 {
                precision[c] = tp as f32 / predicted as f32;
            }
            if actual > 0 {
                recall[c] = tp as f32 / actual as f32;
            }
        }
        Metrics {
            accuracy: accuracy(predictions, labels),
            precision,
            recall,
            confusion,
        }
    }

    /// Macro-averaged F1 score.
    pub fn macro_f1(&self) -> f32 {
        let k = self.precision.len();
        if k == 0 {
            return 0.0;
        }
        let mut total = 0.0;
        for c in 0..k {
            let (p, r) = (self.precision[c], self.recall[c]);
            if p + r > 0.0 {
                total += 2.0 * p * r / (p + r);
            }
        }
        total / k as f32
    }

    /// Indices of misclassified samples — the "faulty cases" DeepMorph
    /// diagnoses.
    pub fn faulty_indices(predictions: &[usize], labels: &[usize]) -> Vec<usize> {
        predictions
            .iter()
            .zip(labels)
            .enumerate()
            .filter(|(_, (p, l))| p != l)
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 2], &[0, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn confusion_counts_rows_as_truth() {
        let m = confusion_matrix(&[0, 0, 1], &[0, 1, 1], 2);
        assert_eq!(m[0][0], 1); // true 0 predicted 0
        assert_eq!(m[1][0], 1); // true 1 predicted 0
        assert_eq!(m[1][1], 1);
        assert_eq!(m[0][1], 0);
    }

    #[test]
    fn metrics_perfect_classifier() {
        let m = Metrics::compute(&[0, 1, 2], &[0, 1, 2], 3);
        assert_eq!(m.accuracy, 1.0);
        assert!(m.precision.iter().all(|&p| p == 1.0));
        assert!(m.recall.iter().all(|&r| r == 1.0));
        assert!((m.macro_f1() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn metrics_degenerate_class_handled() {
        // Class 2 never occurs nor is predicted: precision/recall = 0.
        let m = Metrics::compute(&[0, 1], &[0, 1], 3);
        assert_eq!(m.precision[2], 0.0);
        assert_eq!(m.recall[2], 0.0);
    }

    #[test]
    fn faulty_indices_are_misclassifications() {
        let faulty = Metrics::faulty_indices(&[0, 1, 0, 2], &[0, 0, 0, 2]);
        assert_eq!(faulty, vec![1]);
    }
}
