//! Activation functions.

use deepmorph_tensor::{workspace, Tensor};

use crate::dense::single_input;
use crate::layer::{Grads, Layer, Mode};
use crate::{NnError, Result};

/// Rectified linear unit, `max(0, x)`, applied elementwise.
#[derive(Debug, Default)]
pub struct ReLU {
    /// Persistent sign mask, refilled (capacity reused) each training
    /// forward.
    mask: Vec<bool>,
    has_mask: bool,
}

impl ReLU {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        ReLU {
            mask: Vec::new(),
            has_mask: false,
        }
    }
}

impl Layer for ReLU {
    fn name(&self) -> &str {
        "relu"
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Result<Tensor> {
        let x = single_input(inputs, "relu")?;
        let out = x.map(|v| v.max(0.0));
        if mode == Mode::Train {
            self.mask.clear();
            self.mask.extend(x.data().iter().map(|&v| v > 0.0));
            self.has_mask = true;
        }
        Ok(out)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Grads> {
        if !self.has_mask || self.mask.len() != grad.len() {
            return Err(NnError::MissingActivation {
                layer: "relu".into(),
            });
        }
        let mut out = workspace::tensor_raw(grad.shape());
        for ((o, &g), &keep) in out.data_mut().iter_mut().zip(grad.data()).zip(&self.mask) {
            *o = if keep { g } else { 0.0 };
        }
        Ok(Grads::one(out))
    }

    fn clear_cache(&mut self) {
        self.mask.clear();
        self.has_mask = false;
    }
}

/// Hyperbolic tangent activation (used by the classic LeNet-5).
#[derive(Debug, Default)]
pub struct Tanh {
    output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Tanh { output: None }
    }
}

impl Layer for Tanh {
    fn name(&self) -> &str {
        "tanh"
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Result<Tensor> {
        let x = single_input(inputs, "tanh")?;
        let out = x.map(f32::tanh);
        if mode == Mode::Train {
            workspace::recycle_opt(self.output.replace(out.pooled_clone()));
        }
        Ok(out)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Grads> {
        let y = self
            .output
            .as_ref()
            .ok_or_else(|| NnError::MissingActivation {
                layer: "tanh".into(),
            })?;
        if y.len() != grad.len() {
            return Err(NnError::MissingActivation {
                layer: "tanh".into(),
            });
        }
        // d tanh = 1 - tanh^2
        let mut out = workspace::tensor_raw(grad.shape());
        for ((o, &g), &yv) in out.data_mut().iter_mut().zip(grad.data()).zip(y.data()) {
            *o = g * (1.0 - yv * yv);
        }
        Ok(Grads::one(out))
    }

    fn clear_cache(&mut self) {
        workspace::recycle_opt(self.output.take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut l = ReLU::new();
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        let y = l.forward(&[&x], Mode::Eval).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_gradient_masks() {
        let mut l = ReLU::new();
        let x = Tensor::from_slice(&[-1.0, 0.5, 2.0]);
        let _ = l.forward(&[&x], Mode::Train).unwrap();
        let g = l
            .backward(&Tensor::from_slice(&[10.0, 10.0, 10.0]))
            .unwrap()
            .into_first();
        assert_eq!(g.data(), &[0.0, 10.0, 10.0]);
    }

    #[test]
    fn relu_zero_boundary_blocks_gradient() {
        let mut l = ReLU::new();
        let x = Tensor::from_slice(&[0.0]);
        let _ = l.forward(&[&x], Mode::Train).unwrap();
        let g = l
            .backward(&Tensor::from_slice(&[5.0]))
            .unwrap()
            .into_first();
        assert_eq!(g.data(), &[0.0]);
    }

    #[test]
    fn tanh_gradient_check() {
        let mut l = Tanh::new();
        let x = Tensor::from_slice(&[0.3, -0.7, 1.2]);
        let _ = l.forward(&[&x], Mode::Train).unwrap();
        let gin = l.backward(&Tensor::ones(&[3])).unwrap().into_first();
        let eps = 1e-3;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (l.forward(&[&xp], Mode::Eval).unwrap().sum()
                - l.forward(&[&xm], Mode::Eval).unwrap().sum())
                / (2.0 * eps);
            assert!((num - gin.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut l = ReLU::new();
        assert!(l.backward(&Tensor::ones(&[1])).is_err());
    }
}
