//! Activation functions.

use deepmorph_tensor::Tensor;

use crate::dense::single_input;
use crate::layer::{Layer, Mode};
use crate::{NnError, Result};

/// Rectified linear unit, `max(0, x)`, applied elementwise.
#[derive(Debug, Default)]
pub struct ReLU {
    mask: Option<Vec<bool>>,
}

impl ReLU {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        ReLU { mask: None }
    }
}

impl Layer for ReLU {
    fn name(&self) -> &str {
        "relu"
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Result<Tensor> {
        let x = single_input(inputs, "relu")?;
        let out = x.map(|v| v.max(0.0));
        if mode == Mode::Train {
            self.mask = Some(x.data().iter().map(|&v| v > 0.0).collect());
        }
        Ok(out)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Vec<Tensor>> {
        let mask = self
            .mask
            .as_ref()
            .ok_or_else(|| NnError::MissingActivation {
                layer: "relu".into(),
            })?;
        let mut out = grad.clone();
        for (v, &keep) in out.data_mut().iter_mut().zip(mask) {
            if !keep {
                *v = 0.0;
            }
        }
        Ok(vec![out])
    }

    fn clear_cache(&mut self) {
        self.mask = None;
    }
}

/// Hyperbolic tangent activation (used by the classic LeNet-5).
#[derive(Debug, Default)]
pub struct Tanh {
    output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Tanh { output: None }
    }
}

impl Layer for Tanh {
    fn name(&self) -> &str {
        "tanh"
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Result<Tensor> {
        let x = single_input(inputs, "tanh")?;
        let out = x.map(f32::tanh);
        if mode == Mode::Train {
            self.output = Some(out.clone());
        }
        Ok(out)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Vec<Tensor>> {
        let y = self
            .output
            .as_ref()
            .ok_or_else(|| NnError::MissingActivation {
                layer: "tanh".into(),
            })?;
        // d tanh = 1 - tanh^2
        let mut out = grad.clone();
        for (g, &yv) in out.data_mut().iter_mut().zip(y.data()) {
            *g *= 1.0 - yv * yv;
        }
        Ok(vec![out])
    }

    fn clear_cache(&mut self) {
        self.output = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let mut l = ReLU::new();
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        let y = l.forward(&[&x], Mode::Eval).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_gradient_masks() {
        let mut l = ReLU::new();
        let x = Tensor::from_slice(&[-1.0, 0.5, 2.0]);
        let _ = l.forward(&[&x], Mode::Train).unwrap();
        let g = l
            .backward(&Tensor::from_slice(&[10.0, 10.0, 10.0]))
            .unwrap();
        assert_eq!(g[0].data(), &[0.0, 10.0, 10.0]);
    }

    #[test]
    fn relu_zero_boundary_blocks_gradient() {
        let mut l = ReLU::new();
        let x = Tensor::from_slice(&[0.0]);
        let _ = l.forward(&[&x], Mode::Train).unwrap();
        let g = l.backward(&Tensor::from_slice(&[5.0])).unwrap();
        assert_eq!(g[0].data(), &[0.0]);
    }

    #[test]
    fn tanh_gradient_check() {
        let mut l = Tanh::new();
        let x = Tensor::from_slice(&[0.3, -0.7, 1.2]);
        let _ = l.forward(&[&x], Mode::Train).unwrap();
        let gin = l.backward(&Tensor::ones(&[3])).unwrap().remove(0);
        let eps = 1e-3;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (l.forward(&[&xp], Mode::Eval).unwrap().sum()
                - l.forward(&[&xm], Mode::Eval).unwrap().sum())
                / (2.0 * eps);
            assert!((num - gin.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut l = ReLU::new();
        assert!(l.backward(&Tensor::ones(&[1])).is_err());
    }
}
