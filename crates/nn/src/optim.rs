//! Optimizers.

use deepmorph_tensor::Tensor;

use crate::graph::Graph;
use crate::Result;

/// A gradient-based parameter updater.
///
/// Optimizers keep per-parameter state (momentum buffers, Adam moments)
/// indexed by the graph's stable parameter-visit order; always pair one
/// optimizer with one graph.
pub trait Optimizer {
    /// Applies one update step from the gradients accumulated in `graph`.
    ///
    /// # Errors
    ///
    /// Propagates tensor shape errors (which indicate optimizer/graph
    /// mismatch).
    fn step(&mut self, graph: &mut Graph) -> Result<()>;

    /// Current learning rate.
    fn learning_rate(&self) -> f32;

    /// Overrides the learning rate (for schedules).
    fn set_learning_rate(&mut self, lr: f32);
}

/// Stochastic gradient descent with momentum and decoupled weight decay.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Plain SGD with learning rate `lr`.
    pub fn new(lr: f32) -> Self {
        Sgd::with_momentum(lr, 0.0, 0.0)
    }

    /// SGD with momentum `mu` and L2 weight decay `wd`.
    pub fn with_momentum(lr: f32, mu: f32, wd: f32) -> Self {
        Sgd {
            lr,
            momentum: mu,
            weight_decay: wd,
            velocity: Vec::new(),
        }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, graph: &mut Graph) -> Result<()> {
        let (lr, mu, wd) = (self.lr, self.momentum, self.weight_decay);
        let velocity = &mut self.velocity;
        let mut idx = 0;
        let mut result = Ok(());
        graph.visit_params(&mut |p| {
            if result.is_err() {
                return;
            }
            if velocity.len() <= idx {
                velocity.push(Tensor::zeros(p.value.shape()));
            }
            let v = &mut velocity[idx];
            idx += 1;
            // v = mu*v - lr*(g + wd*w) ; w += v
            for ((vv, &g), w) in v
                .data_mut()
                .iter_mut()
                .zip(p.grad.data())
                .zip(p.value.data().iter())
            {
                *vv = mu * *vv - lr * (g + wd * *w);
            }
            if let Err(e) = p.value.add_assign_tensor(v) {
                result = Err(e.into());
            }
        });
        result
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with standard defaults (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f32) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, graph: &mut Graph) -> Result<()> {
        self.t += 1;
        let (lr, b1, b2, eps, t) = (self.lr, self.beta1, self.beta2, self.eps, self.t);
        let bc1 = 1.0 - b1.powi(t as i32);
        let bc2 = 1.0 - b2.powi(t as i32);
        let (ms, vs) = (&mut self.m, &mut self.v);
        let mut idx = 0;
        graph.visit_params(&mut |p| {
            if ms.len() <= idx {
                ms.push(Tensor::zeros(p.value.shape()));
                vs.push(Tensor::zeros(p.value.shape()));
            }
            let m = &mut ms[idx];
            let v = &mut vs[idx];
            idx += 1;
            for (((mv, vv), &g), w) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(p.grad.data())
                .zip(p.value.data_mut().iter_mut())
            {
                *mv = b1 * *mv + (1.0 - b1) * g;
                *vv = b2 * *vv + (1.0 - b2) * g * g;
                let m_hat = *mv / bc1;
                let v_hat = *vv / bc2;
                *w -= lr * m_hat / (v_hat.sqrt() + eps);
            }
        });
        Ok(())
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }

    fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use crate::graph::GraphBuilder;
    use crate::layer::Mode;
    use crate::loss::SoftmaxCrossEntropy;
    use deepmorph_tensor::init::stream_rng;

    fn tiny_graph(seed: u64) -> Graph {
        let mut rng = stream_rng(seed, "optim");
        let mut gb = GraphBuilder::new();
        let x = gb.input();
        let out = gb.add_layer(Dense::new(2, 2, &mut rng), &[x]).unwrap();
        gb.build(out).unwrap()
    }

    fn one_step_loss(opt: &mut dyn Optimizer, steps: usize) -> f32 {
        let mut g = tiny_graph(1);
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]).unwrap();
        let labels = [0usize, 1];
        let loss_fn = SoftmaxCrossEntropy::new();
        let mut last = f32::NAN;
        for _ in 0..steps {
            let logits = g.forward(&x, Mode::Train).unwrap();
            let (loss, grad) = loss_fn.compute(&logits, &labels).unwrap();
            g.zero_grad();
            g.backward(&grad).unwrap();
            opt.step(&mut g).unwrap();
            last = loss;
        }
        last
    }

    #[test]
    fn sgd_reduces_loss() {
        let initial = one_step_loss(&mut Sgd::new(0.0), 1);
        let trained = one_step_loss(&mut Sgd::new(0.5), 100);
        assert!(trained < initial * 0.5, "{trained} vs {initial}");
    }

    #[test]
    fn momentum_accelerates() {
        let plain = one_step_loss(&mut Sgd::new(0.1), 50);
        let momentum = one_step_loss(&mut Sgd::with_momentum(0.1, 0.9, 0.0), 50);
        assert!(momentum < plain, "momentum {momentum} vs plain {plain}");
    }

    #[test]
    fn adam_reduces_loss() {
        let initial = one_step_loss(&mut Sgd::new(0.0), 1);
        let trained = one_step_loss(&mut Adam::new(0.05), 100);
        assert!(trained < initial * 0.5, "{trained} vs {initial}");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut g = tiny_graph(2);
        let mut opt = Sgd::with_momentum(0.1, 0.0, 0.5);
        // Zero gradients: only decay acts.
        let x = Tensor::ones(&[1, 2]);
        let _ = g.forward(&x, Mode::Train).unwrap();
        g.zero_grad();
        let mut before = 0.0;
        g.visit_params(&mut |p| before += p.value.norm_sq());
        opt.step(&mut g).unwrap();
        let mut after = 0.0;
        g.visit_params(&mut |p| after += p.value.norm_sq());
        assert!(after < before, "{after} vs {before}");
    }

    #[test]
    fn learning_rate_is_settable() {
        let mut opt = Sgd::new(0.1);
        opt.set_learning_rate(0.01);
        assert!((opt.learning_rate() - 0.01).abs() < 1e-9);
        let mut adam = Adam::new(0.1);
        adam.set_learning_rate(0.2);
        assert!((adam.learning_rate() - 0.2).abs() < 1e-9);
    }
}
