//! Loss functions.

use deepmorph_tensor::Tensor;

use crate::{NnError, Result};

/// Softmax cross-entropy over integer class labels.
///
/// Combines the softmax and the negative log-likelihood so the gradient is
/// the numerically-stable `softmax(logits) - onehot(labels)`, averaged over
/// the batch.
#[derive(Debug, Default, Clone, Copy)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Creates the loss.
    pub fn new() -> Self {
        SoftmaxCrossEntropy
    }

    /// Computes `(mean loss, dL/dlogits)` for `[n, k]` logits.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLabels`] if `labels.len() != n` or any
    /// label is `>= k`.
    pub fn compute(&self, logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
        logits.expect_rank(2, "softmax_cross_entropy")?;
        let (n, k) = (logits.shape()[0], logits.shape()[1]);
        if labels.len() != n {
            return Err(NnError::InvalidLabels {
                reason: format!("{} labels for a batch of {n}", labels.len()),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= k) {
            return Err(NnError::InvalidLabels {
                reason: format!("label {bad} out of range for {k} classes"),
            });
        }
        let log_probs = logits.log_softmax_rows()?;
        let mut loss = 0.0;
        for (i, &label) in labels.iter().enumerate() {
            loss -= log_probs.row(i)?[label];
        }
        loss /= n as f32;

        let mut grad = log_probs.map(f32::exp); // softmax probabilities
        deepmorph_tensor::workspace::recycle_tensor(log_probs);
        let inv_n = 1.0 / n as f32;
        for (i, &label) in labels.iter().enumerate() {
            let row = grad.row_mut(i)?;
            row[label] -= 1.0;
            for v in row.iter_mut() {
                *v *= inv_n;
            }
        }
        Ok((loss, grad))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_low_loss() {
        let logits = Tensor::from_vec(vec![10.0, -10.0, -10.0, 10.0], &[2, 2]).unwrap();
        let (loss, _) = SoftmaxCrossEntropy::new()
            .compute(&logits, &[0, 1])
            .unwrap();
        assert!(loss < 1e-3, "loss {loss}");
    }

    #[test]
    fn uniform_logits_give_ln_k() {
        let logits = Tensor::zeros(&[3, 10]);
        let (loss, _) = SoftmaxCrossEntropy::new()
            .compute(&logits, &[0, 5, 9])
            .unwrap();
        assert!((loss - (10f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.5, 0.2], &[2, 3]).unwrap();
        let (_, grad) = SoftmaxCrossEntropy::new()
            .compute(&logits, &[2, 0])
            .unwrap();
        for r in 0..2 {
            let s: f32 = grad.row(r).unwrap().iter().sum();
            assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn gradient_check() {
        let logits = Tensor::from_vec(vec![0.5, -0.2, 0.9, 0.1, 0.3, -0.6], &[2, 3]).unwrap();
        let labels = [1usize, 2];
        let loss_fn = SoftmaxCrossEntropy::new();
        let (_, grad) = loss_fn.compute(&logits, &labels).unwrap();
        let eps = 1e-3;
        for i in 0..logits.len() {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let (fp, _) = loss_fn.compute(&lp, &labels).unwrap();
            let (fm, _) = loss_fn.compute(&lm, &labels).unwrap();
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - grad.data()[i]).abs() < 1e-3,
                "grad {i}: numeric {num} analytic {}",
                grad.data()[i]
            );
        }
    }

    #[test]
    fn rejects_bad_labels() {
        let logits = Tensor::zeros(&[2, 3]);
        let loss = SoftmaxCrossEntropy::new();
        assert!(loss.compute(&logits, &[0]).is_err());
        assert!(loss.compute(&logits, &[0, 3]).is_err());
    }
}
