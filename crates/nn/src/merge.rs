//! Multi-input merge layers: residual addition and channel concatenation.

use deepmorph_tensor::{workspace, Tensor};

use crate::layer::{Grads, Layer, Mode};
use crate::{NnError, Result};

/// Elementwise sum of two tensors — the residual ("shortcut") connection
/// used by ResNet blocks.
#[derive(Debug, Default)]
pub struct Add {
    seen_forward: bool,
}

impl Add {
    /// Creates a residual add layer.
    pub fn new() -> Self {
        Add {
            seen_forward: false,
        }
    }
}

impl Layer for Add {
    fn name(&self) -> &str {
        "add"
    }

    fn arity(&self) -> usize {
        2
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Result<Tensor> {
        if inputs.len() != 2 {
            return Err(NnError::ArityMismatch {
                layer: "add".into(),
                expected: 2,
                actual: inputs.len(),
            });
        }
        if mode == Mode::Train {
            self.seen_forward = true;
        }
        inputs[0].add_tensor(inputs[1]).map_err(Into::into)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Grads> {
        if !self.seen_forward {
            return Err(NnError::MissingActivation {
                layer: "add".into(),
            });
        }
        Ok(Grads::two(grad.pooled_clone(), grad.pooled_clone()))
    }

    fn clear_cache(&mut self) {
        self.seen_forward = false;
    }
}

/// Concatenates two NCHW tensors along the channel axis — the dense
/// connectivity pattern of DenseNet blocks.
#[derive(Debug, Default)]
pub struct ConcatChannels {
    split: Option<(usize, usize)>,
}

impl ConcatChannels {
    /// Creates a channel-concat layer.
    pub fn new() -> Self {
        ConcatChannels { split: None }
    }
}

impl Layer for ConcatChannels {
    fn name(&self) -> &str {
        "concat_channels"
    }

    fn arity(&self) -> usize {
        2
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Result<Tensor> {
        if inputs.len() != 2 {
            return Err(NnError::ArityMismatch {
                layer: "concat_channels".into(),
                expected: 2,
                actual: inputs.len(),
            });
        }
        let (a, b) = (inputs[0], inputs[1]);
        a.expect_rank(4, "concat_channels")?;
        b.expect_rank(4, "concat_channels")?;
        let [n, ca, h, w] = [a.shape()[0], a.shape()[1], a.shape()[2], a.shape()[3]];
        let [nb, cb, hb, wb] = [b.shape()[0], b.shape()[1], b.shape()[2], b.shape()[3]];
        if n != nb || h != hb || w != wb {
            return Err(NnError::Tensor(
                deepmorph_tensor::TensorError::ShapeMismatch {
                    lhs: a.shape().to_vec(),
                    rhs: b.shape().to_vec(),
                    op: "concat_channels",
                },
            ));
        }
        let plane = h * w;
        let mut out = workspace::tensor_raw(&[n, ca + cb, h, w]);
        for i in 0..n {
            let dst = &mut out.data_mut()[i * (ca + cb) * plane..(i + 1) * (ca + cb) * plane];
            dst[..ca * plane].copy_from_slice(&a.data()[i * ca * plane..(i + 1) * ca * plane]);
            dst[ca * plane..].copy_from_slice(&b.data()[i * cb * plane..(i + 1) * cb * plane]);
        }
        if mode == Mode::Train {
            self.split = Some((ca, cb));
        }
        Ok(out)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Grads> {
        let (ca, cb) = self.split.ok_or_else(|| NnError::MissingActivation {
            layer: "concat_channels".into(),
        })?;
        grad.expect_rank(4, "concat_channels backward")?;
        let [n, c, h, w] = [
            grad.shape()[0],
            grad.shape()[1],
            grad.shape()[2],
            grad.shape()[3],
        ];
        debug_assert_eq!(c, ca + cb);
        let plane = h * w;
        let mut ga = workspace::tensor_raw(&[n, ca, h, w]);
        let mut gb = workspace::tensor_raw(&[n, cb, h, w]);
        for i in 0..n {
            let src = &grad.data()[i * c * plane..(i + 1) * c * plane];
            ga.data_mut()[i * ca * plane..(i + 1) * ca * plane].copy_from_slice(&src[..ca * plane]);
            gb.data_mut()[i * cb * plane..(i + 1) * cb * plane].copy_from_slice(&src[ca * plane..]);
        }
        Ok(Grads::two(ga, gb))
    }

    fn clear_cache(&mut self) {
        self.split = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sums_and_splits_gradient() {
        let mut l = Add::new();
        let a = Tensor::ones(&[1, 2, 2, 2]);
        let b = Tensor::full(&[1, 2, 2, 2], 2.0);
        let y = l.forward(&[&a, &b], Mode::Train).unwrap();
        assert!(y.data().iter().all(|&v| v == 3.0));
        let grads = l.backward(&Tensor::ones(&[1, 2, 2, 2])).unwrap();
        assert_eq!(grads.len(), 2);
        assert_eq!(grads.get(0), grads.get(1));
    }

    #[test]
    fn add_rejects_wrong_arity() {
        let mut l = Add::new();
        let a = Tensor::ones(&[2]);
        assert!(matches!(
            l.forward(&[&a], Mode::Eval).unwrap_err(),
            NnError::ArityMismatch { .. }
        ));
    }

    #[test]
    fn concat_stacks_channels() {
        let mut l = ConcatChannels::new();
        let a = Tensor::ones(&[2, 1, 2, 2]);
        let b = Tensor::zeros(&[2, 3, 2, 2]);
        let y = l.forward(&[&a, &b], Mode::Train).unwrap();
        assert_eq!(y.shape(), &[2, 4, 2, 2]);
        assert_eq!(y.at(&[1, 0, 1, 1]).unwrap(), 1.0);
        assert_eq!(y.at(&[1, 3, 1, 1]).unwrap(), 0.0);
    }

    #[test]
    fn concat_backward_splits() {
        let mut l = ConcatChannels::new();
        let a = Tensor::ones(&[1, 1, 2, 2]);
        let b = Tensor::ones(&[1, 2, 2, 2]);
        let _ = l.forward(&[&a, &b], Mode::Train).unwrap();
        let g = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[1, 3, 2, 2]).unwrap();
        let grads = l.backward(&g).unwrap();
        let ga = grads.get(0).unwrap();
        let gb = grads.get(1).unwrap();
        assert_eq!(ga.shape(), &[1, 1, 2, 2]);
        assert_eq!(gb.shape(), &[1, 2, 2, 2]);
        assert_eq!(ga.data(), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(gb.data()[0], 4.0);
    }

    #[test]
    fn concat_rejects_mismatched_spatial() {
        let mut l = ConcatChannels::new();
        let a = Tensor::ones(&[1, 1, 2, 2]);
        let b = Tensor::ones(&[1, 1, 3, 3]);
        assert!(l.forward(&[&a, &b], Mode::Eval).is_err());
    }
}
