//! Pooling layers: max, average, and global average.

use deepmorph_tensor::conv::{
    avgpool2d, avgpool2d_backward, global_avg_pool, global_avg_pool_backward, maxpool2d_backward,
    maxpool2d_into, PoolGeometry,
};
use deepmorph_tensor::{workspace, Tensor};

use crate::dense::single_input;
use crate::layer::{Grads, Layer, Mode};
use crate::{NnError, Result};

/// Max pooling over square windows of an NCHW tensor.
///
/// The argmax routing table lives in a persistent per-layer buffer that is
/// overwritten each batch, so a warm forward/backward step performs no
/// heap allocations.
#[derive(Debug)]
pub struct MaxPool2d {
    name: String,
    geo: PoolGeometry,
    /// Argmax routing table of the last **training** forward (what
    /// backward consumes).
    argmax: Vec<usize>,
    /// Scratch table for eval-mode forwards, so evaluating between a
    /// training forward and its backward cannot clobber the cached
    /// routing.
    eval_argmax: Vec<usize>,
    active: bool,
}

impl MaxPool2d {
    /// Creates a max-pool layer; geometry is validated up front.
    ///
    /// # Errors
    ///
    /// Returns a geometry error if the window does not fit the input.
    pub fn new(
        channels: usize,
        in_h: usize,
        in_w: usize,
        window: usize,
        stride: usize,
    ) -> Result<Self> {
        let geo = PoolGeometry::new(channels, in_h, in_w, window, stride)?;
        Ok(MaxPool2d {
            name: format!("maxpool[{window}x{window} s{stride} @{in_h}x{in_w}]"),
            geo,
            argmax: Vec::new(),
            eval_argmax: Vec::new(),
            active: false,
        })
    }

    /// Output shape `[c, h, w]` (excluding batch).
    pub fn out_shape(&self) -> [usize; 3] {
        [self.geo.channels, self.geo.out_h, self.geo.out_w]
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Result<Tensor> {
        let x = single_input(inputs, &self.name)?;
        x.expect_rank(4, "maxpool2d")?;
        let n = x.shape()[0];
        let mut out =
            workspace::tensor_raw(&[n, self.geo.channels, self.geo.out_h, self.geo.out_w]);
        let argmax = if mode == Mode::Train {
            &mut self.argmax
        } else {
            &mut self.eval_argmax
        };
        argmax.resize(out.len(), 0);
        maxpool2d_into(x, &self.geo, out.data_mut(), argmax)?;
        if mode == Mode::Train {
            self.active = true;
        }
        Ok(out)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Grads> {
        let expected = grad.len();
        if !self.active || self.argmax.len() != expected {
            return Err(NnError::MissingActivation {
                layer: self.name.clone(),
            });
        }
        Ok(Grads::one(maxpool2d_backward(
            grad,
            &self.argmax,
            &self.geo,
        )?))
    }

    fn clear_cache(&mut self) {
        self.argmax = Vec::new();
        self.eval_argmax = Vec::new();
        self.active = false;
    }
}

/// Average pooling over square windows of an NCHW tensor.
#[derive(Debug)]
pub struct AvgPool2d {
    name: String,
    geo: PoolGeometry,
    seen_forward: bool,
}

impl AvgPool2d {
    /// Creates an average-pool layer; geometry is validated up front.
    ///
    /// # Errors
    ///
    /// Returns a geometry error if the window does not fit the input.
    pub fn new(
        channels: usize,
        in_h: usize,
        in_w: usize,
        window: usize,
        stride: usize,
    ) -> Result<Self> {
        let geo = PoolGeometry::new(channels, in_h, in_w, window, stride)?;
        Ok(AvgPool2d {
            name: format!("avgpool[{window}x{window} s{stride} @{in_h}x{in_w}]"),
            geo,
            seen_forward: false,
        })
    }

    /// Output shape `[c, h, w]` (excluding batch).
    pub fn out_shape(&self) -> [usize; 3] {
        [self.geo.channels, self.geo.out_h, self.geo.out_w]
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Result<Tensor> {
        let x = single_input(inputs, &self.name)?;
        if mode == Mode::Train {
            self.seen_forward = true;
        }
        avgpool2d(x, &self.geo).map_err(Into::into)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Grads> {
        if !self.seen_forward {
            return Err(NnError::MissingActivation {
                layer: self.name.clone(),
            });
        }
        Ok(Grads::one(avgpool2d_backward(grad, &self.geo)?))
    }

    fn clear_cache(&mut self) {
        self.seen_forward = false;
    }
}

/// Global average pool: `[n, c, h, w]` → `[n, c]`.
#[derive(Debug)]
pub struct GlobalAvgPool {
    spatial: Option<(usize, usize)>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { spatial: None }
    }
}

impl Default for GlobalAvgPool {
    fn default() -> Self {
        GlobalAvgPool::new()
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> &str {
        "global_avg_pool"
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Result<Tensor> {
        let x = single_input(inputs, "global_avg_pool")?;
        x.expect_rank(4, "global_avg_pool")?;
        if mode == Mode::Train {
            self.spatial = Some((x.shape()[2], x.shape()[3]));
        }
        global_avg_pool(x).map_err(Into::into)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Grads> {
        let (h, w) = self.spatial.ok_or_else(|| NnError::MissingActivation {
            layer: "global_avg_pool".into(),
        })?;
        Ok(Grads::one(global_avg_pool_backward(grad, h, w)?))
    }

    fn clear_cache(&mut self) {
        self.spatial = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_shapes_and_routing() {
        let mut l = MaxPool2d::new(2, 4, 4, 2, 2).unwrap();
        let x = Tensor::from_vec((0..32).map(|v| v as f32).collect(), &[1, 2, 4, 4]).unwrap();
        let y = l.forward(&[&x], Mode::Train).unwrap();
        assert_eq!(y.shape(), &[1, 2, 2, 2]);
        let g = l
            .backward(&Tensor::ones(&[1, 2, 2, 2]))
            .unwrap()
            .into_first();
        assert_eq!(g.shape(), &[1, 2, 4, 4]);
        assert_eq!(g.sum(), 8.0);
    }

    #[test]
    fn eval_forward_does_not_clobber_training_argmax() {
        // forward(Train, A) → forward(Eval, B) → backward must route A's
        // gradient through A's argmax, not B's.
        let mut l = MaxPool2d::new(1, 4, 4, 2, 2).unwrap();
        let a = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        // B reverses A, so its maxima sit in different window corners.
        let b = Tensor::from_vec((0..16).rev().map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let _ = l.forward(&[&a], Mode::Train).unwrap();
        let _ = l.forward(&[&b], Mode::Eval).unwrap();
        let g = l
            .backward(&Tensor::ones(&[1, 1, 2, 2]))
            .unwrap()
            .into_first();
        // A's maxima are the bottom-right corner of each window.
        assert_eq!(g.at(&[0, 0, 1, 1]).unwrap(), 1.0);
        assert_eq!(g.at(&[0, 0, 0, 0]).unwrap(), 0.0);
    }

    #[test]
    fn avgpool_gradient_is_uniform() {
        let mut l = AvgPool2d::new(1, 4, 4, 2, 2).unwrap();
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let _ = l.forward(&[&x], Mode::Train).unwrap();
        let g = l
            .backward(&Tensor::ones(&[1, 1, 2, 2]))
            .unwrap()
            .into_first();
        assert!(g.data().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn global_pool_averages_planes() {
        let mut l = GlobalAvgPool::new();
        let x = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]).unwrap();
        let y = l.forward(&[&x], Mode::Train).unwrap();
        assert_eq!(y.shape(), &[1, 2]);
        assert!((y.data()[0] - 1.5).abs() < 1e-6);
        assert!((y.data()[1] - 5.5).abs() < 1e-6);
        let g = l.backward(&Tensor::ones(&[1, 2])).unwrap().into_first();
        assert_eq!(g.shape(), &[1, 2, 2, 2]);
        assert!((g.sum() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut l = GlobalAvgPool::new();
        assert!(l.backward(&Tensor::ones(&[1, 2])).is_err());
        let mut l = AvgPool2d::new(1, 4, 4, 2, 2).unwrap();
        assert!(l.backward(&Tensor::ones(&[1, 1, 2, 2])).is_err());
        let mut l = MaxPool2d::new(1, 4, 4, 2, 2).unwrap();
        assert!(l.backward(&Tensor::ones(&[1, 1, 2, 2])).is_err());
    }
}
