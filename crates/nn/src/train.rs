//! Mini-batch training loop.

use deepmorph_tensor::backend::ComputeCtx;
use deepmorph_tensor::{workspace, Tensor, MAX_RANK};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::Graph;
use crate::layer::Mode;
use crate::loss::SoftmaxCrossEntropy;
use crate::metrics::accuracy;
use crate::optim::{Adam, Optimizer, Sgd};
use crate::{NnError, Result};

/// Which optimizer the trainer instantiates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum OptimizerKind {
    /// SGD with the given momentum and weight decay.
    Sgd {
        /// Momentum coefficient.
        momentum: f32,
        /// L2 weight decay.
        weight_decay: f32,
    },
    /// Adam with standard betas.
    Adam,
}

/// Configuration for [`Trainer`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (the final batch of an epoch may be smaller).
    pub batch_size: usize,
    /// Initial learning rate.
    pub learning_rate: f32,
    /// Multiplicative learning-rate decay applied after each epoch.
    pub lr_decay: f32,
    /// Optimizer selection.
    pub optimizer: OptimizerKind,
    /// Shuffle the training set each epoch.
    pub shuffle: bool,
    /// Global gradient-norm clip applied before each optimizer step
    /// (`None` = no clipping). Deep models with label noise can diverge at
    /// constant learning rates; a clip of ~5 keeps them stable.
    pub clip_grad_norm: Option<f32>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 5,
            batch_size: 32,
            learning_rate: 0.05,
            lr_decay: 1.0,
            optimizer: OptimizerKind::Sgd {
                momentum: 0.9,
                weight_decay: 1e-4,
            },
            shuffle: true,
            clip_grad_norm: Some(5.0),
        }
    }
}

/// Rescales all parameter gradients so their global L2 norm is at most
/// `max_norm`. Returns the pre-clip norm.
pub fn clip_gradients(graph: &mut Graph, max_norm: f32) -> f32 {
    let mut norm_sq = 0.0f32;
    graph.visit_params(&mut |p| norm_sq += p.grad.norm_sq());
    let norm = norm_sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        graph.visit_params(&mut |p| p.grad.scale(scale));
    }
    norm
}

/// Summary of a completed training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss of each epoch.
    pub epoch_losses: Vec<f32>,
    /// Training-set accuracy measured after the final epoch.
    pub final_train_accuracy: f32,
}

impl TrainReport {
    /// Loss of the final epoch (NaN if no epochs ran).
    pub fn final_loss(&self) -> f32 {
        self.epoch_losses.last().copied().unwrap_or(f32::NAN)
    }
}

/// Gathers the rows/images of `x` selected by `indices` into a batch
/// tensor drawn from the thread's workspace arena (works for any rank ≥ 1;
/// axis 0 is the sample axis). Recycle the batch after use to keep the
/// training loop allocation-free.
///
/// # Errors
///
/// Returns an error if any index is out of range.
pub fn gather_batch(x: &Tensor, indices: &[usize]) -> Result<Tensor> {
    let n = x.shape()[0];
    let sample_len: usize = x.shape()[1..].iter().product();
    if let Some(&bad) = indices.iter().find(|&&i| i >= n) {
        return Err(NnError::InvalidLabels {
            reason: format!("sample index {bad} out of range for {n}"),
        });
    }
    let mut shape = [0usize; MAX_RANK];
    shape[0] = indices.len();
    shape[1..x.ndim()].copy_from_slice(&x.shape()[1..]);
    let mut out = workspace::tensor_raw(&shape[..x.ndim()]);
    if sample_len > 0 {
        for (dst, &i) in out.data_mut().chunks_mut(sample_len).zip(indices) {
            dst.copy_from_slice(&x.data()[i * sample_len..(i + 1) * sample_len]);
        }
    }
    Ok(out)
}

/// Mini-batch trainer driving a [`Graph`] with softmax cross-entropy.
#[derive(Debug)]
pub struct Trainer {
    config: TrainConfig,
    compute: Option<ComputeCtx>,
}

impl Trainer {
    /// Creates a trainer from a configuration.
    pub fn new(config: TrainConfig) -> Self {
        Trainer {
            config,
            compute: None,
        }
    }

    /// Sets the compute context [`Trainer::fit`] binds into the graph
    /// before training. Without one, the graph keeps whatever context it
    /// already has (the bitwise-reference scalar backend by default).
    pub fn with_compute(mut self, ctx: ComputeCtx) -> Self {
        self.compute = Some(ctx);
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `graph` on `(x, labels)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidTrainConfig`] for an empty dataset or zero
    /// batch size / epochs mismatch, [`NnError::InvalidLabels`] when labels
    /// disagree with the data, and propagates layer errors.
    pub fn fit(
        &mut self,
        graph: &mut Graph,
        x: &Tensor,
        labels: &[usize],
        rng: &mut impl Rng,
    ) -> Result<TrainReport> {
        let n = x.shape()[0];
        if n == 0 {
            return Err(NnError::InvalidTrainConfig {
                reason: "empty training set".into(),
            });
        }
        if self.config.batch_size == 0 {
            return Err(NnError::InvalidTrainConfig {
                reason: "batch_size must be positive".into(),
            });
        }
        if labels.len() != n {
            return Err(NnError::InvalidLabels {
                reason: format!("{} labels for {n} samples", labels.len()),
            });
        }
        if let Some(ctx) = &self.compute {
            graph.bind_compute(ctx);
        }

        let mut optimizer: Box<dyn Optimizer> = match self.config.optimizer {
            OptimizerKind::Sgd {
                momentum,
                weight_decay,
            } => Box::new(Sgd::with_momentum(
                self.config.learning_rate,
                momentum,
                weight_decay,
            )),
            OptimizerKind::Adam => Box::new(Adam::new(self.config.learning_rate)),
        };
        let loss_fn = SoftmaxCrossEntropy::new();
        let mut order: Vec<usize> = (0..n).collect();
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);

        // Per-batch label scratch, reused across the whole run.
        let mut by: Vec<usize> = Vec::with_capacity(self.config.batch_size);
        for _epoch in 0..self.config.epochs {
            if self.config.shuffle {
                order.shuffle(rng);
            }
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in order.chunks(self.config.batch_size) {
                let bx = gather_batch(x, chunk)?;
                by.clear();
                by.extend(chunk.iter().map(|&i| labels[i]));
                let logits = graph.forward(&bx, Mode::Train)?;
                workspace::recycle_tensor(bx);
                let (loss, grad) = loss_fn.compute(&logits, &by)?;
                workspace::recycle_tensor(logits);
                graph.zero_grad();
                graph.backward(&grad)?;
                workspace::recycle_tensor(grad);
                if let Some(max_norm) = self.config.clip_grad_norm {
                    clip_gradients(graph, max_norm);
                }
                optimizer.step(graph)?;
                epoch_loss += loss;
                batches += 1;
            }
            epoch_losses.push(epoch_loss / batches.max(1) as f32);
            let lr = optimizer.learning_rate() * self.config.lr_decay;
            optimizer.set_learning_rate(lr);
        }
        graph.clear_caches();

        let final_train_accuracy =
            evaluate_accuracy(graph, x, labels, self.config.batch_size.max(1))?;
        Ok(TrainReport {
            epoch_losses,
            final_train_accuracy,
        })
    }
}

/// Eval-mode accuracy of `graph` on `(x, labels)`, processed in batches.
///
/// # Errors
///
/// Propagates layer errors; `labels` must match `x`'s sample count.
pub fn evaluate_accuracy(
    graph: &mut Graph,
    x: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> Result<f32> {
    let preds = predict_all(graph, x, batch_size)?;
    Ok(accuracy(&preds, labels))
}

/// Eval-mode predictions for every sample, processed in batches to bound
/// memory.
///
/// # Errors
///
/// Propagates layer errors.
pub fn predict_all(graph: &mut Graph, x: &Tensor, batch_size: usize) -> Result<Vec<usize>> {
    let n = x.shape()[0];
    let mut preds = Vec::with_capacity(n);
    let mut indices: Vec<usize> = Vec::with_capacity(batch_size.max(1));
    let mut start = 0;
    while start < n {
        let end = (start + batch_size.max(1)).min(n);
        indices.clear();
        indices.extend(start..end);
        let bx = gather_batch(x, &indices)?;
        preds.extend(graph.predict(&bx)?);
        workspace::recycle_tensor(bx);
        start = end;
    }
    Ok(preds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::ReLU;
    use crate::dense::Dense;
    use crate::graph::GraphBuilder;
    use deepmorph_tensor::init::stream_rng;

    fn two_blob_data(n_per_class: usize, rng: &mut impl Rng) -> (Tensor, Vec<usize>) {
        // Two Gaussian blobs in 2D.
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for class in 0..2 {
            let cx = if class == 0 { -1.0 } else { 1.0 };
            for _ in 0..n_per_class {
                data.push(cx + deepmorph_tensor::init::gaussian(rng) * 0.3);
                data.push(cx + deepmorph_tensor::init::gaussian(rng) * 0.3);
                labels.push(class);
            }
        }
        (
            Tensor::from_vec(data, &[n_per_class * 2, 2]).unwrap(),
            labels,
        )
    }

    fn mlp(seed: u64) -> Graph {
        let mut rng = stream_rng(seed, "train");
        let mut gb = GraphBuilder::new();
        let x = gb.input();
        let h = gb.add_layer(Dense::new(2, 16, &mut rng), &[x]).unwrap();
        let r = gb.add_layer(ReLU::new(), &[h]).unwrap();
        let o = gb.add_layer(Dense::new(16, 2, &mut rng), &[r]).unwrap();
        gb.build(o).unwrap()
    }

    #[test]
    fn training_learns_separable_blobs() {
        let mut rng = stream_rng(7, "data");
        let (x, y) = two_blob_data(50, &mut rng);
        let mut graph = mlp(1);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 20,
            batch_size: 16,
            learning_rate: 0.1,
            ..TrainConfig::default()
        });
        let report = trainer.fit(&mut graph, &x, &y, &mut rng).unwrap();
        assert!(report.final_train_accuracy > 0.95, "{report:?}");
        // Losses should trend down.
        assert!(report.final_loss() < report.epoch_losses[0]);
    }

    #[test]
    fn adam_also_learns() {
        let mut rng = stream_rng(8, "data");
        let (x, y) = two_blob_data(40, &mut rng);
        let mut graph = mlp(2);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 15,
            batch_size: 16,
            learning_rate: 0.01,
            optimizer: OptimizerKind::Adam,
            ..TrainConfig::default()
        });
        let report = trainer.fit(&mut graph, &x, &y, &mut rng).unwrap();
        assert!(report.final_train_accuracy > 0.9, "{report:?}");
    }

    #[test]
    fn rejects_empty_dataset() {
        let mut rng = stream_rng(9, "data");
        let mut graph = mlp(3);
        let x = Tensor::zeros(&[0, 2]);
        let mut trainer = Trainer::new(TrainConfig::default());
        assert!(matches!(
            trainer.fit(&mut graph, &x, &[], &mut rng).unwrap_err(),
            NnError::InvalidTrainConfig { .. }
        ));
    }

    #[test]
    fn rejects_label_mismatch() {
        let mut rng = stream_rng(10, "data");
        let mut graph = mlp(4);
        let x = Tensor::zeros(&[4, 2]);
        let mut trainer = Trainer::new(TrainConfig::default());
        assert!(matches!(
            trainer.fit(&mut graph, &x, &[0, 1], &mut rng).unwrap_err(),
            NnError::InvalidLabels { .. }
        ));
    }

    #[test]
    fn gather_batch_selects_rows() {
        let x = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[3, 4]).unwrap();
        let b = gather_batch(&x, &[2, 0]).unwrap();
        assert_eq!(b.shape(), &[2, 4]);
        assert_eq!(b.row(0).unwrap(), &[8.0, 9.0, 10.0, 11.0]);
        assert_eq!(b.row(1).unwrap(), &[0.0, 1.0, 2.0, 3.0]);
        assert!(gather_batch(&x, &[5]).is_err());
    }

    #[test]
    fn gather_batch_works_for_4d() {
        let x = Tensor::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 2, 2]).unwrap();
        let b = gather_batch(&x, &[1]).unwrap();
        assert_eq!(b.shape(), &[1, 3, 2, 2]);
        assert_eq!(b.data()[0], 12.0);
    }

    #[test]
    fn clip_gradients_bounds_global_norm() {
        let mut graph = mlp(6);
        let x = Tensor::ones(&[4, 2]);
        let logits = graph.forward(&x, Mode::Train).unwrap();
        let (_, grad) = crate::loss::SoftmaxCrossEntropy::new()
            .compute(&logits, &[0, 1, 0, 1])
            .unwrap();
        graph.zero_grad();
        graph.backward(&grad.scaled(100.0)).unwrap();
        let before = clip_gradients(&mut graph, 1.0);
        assert!(before > 1.0, "pre-clip norm {before}");
        let mut after_sq = 0.0;
        graph.visit_params(&mut |p| after_sq += p.grad.norm_sq());
        assert!((after_sq.sqrt() - 1.0).abs() < 1e-3, "post-clip {after_sq}");
    }

    #[test]
    fn clip_is_identity_below_threshold() {
        let mut graph = mlp(7);
        let x = Tensor::ones(&[2, 2]);
        let logits = graph.forward(&x, Mode::Train).unwrap();
        let (_, grad) = crate::loss::SoftmaxCrossEntropy::new()
            .compute(&logits, &[0, 1])
            .unwrap();
        graph.zero_grad();
        graph.backward(&grad).unwrap();
        let mut before = Vec::new();
        graph.visit_params(&mut |p| before.push(p.grad.clone()));
        clip_gradients(&mut graph, 1e9);
        let mut i = 0;
        graph.visit_params(&mut |p| {
            assert_eq!(p.grad, before[i]);
            i += 1;
        });
    }

    #[test]
    fn predict_all_covers_ragged_batches() {
        let mut graph = mlp(5);
        let x = Tensor::zeros(&[7, 2]);
        let preds = predict_all(&mut graph, &x, 3).unwrap();
        assert_eq!(preds.len(), 7);
    }
}
