//! DAG graph executor with reverse-mode differentiation.
//!
//! Networks are built with [`GraphBuilder`]: nodes are added in topological
//! order (each node may only reference earlier nodes or the graph input),
//! which makes forward execution a single in-order sweep and backward a
//! single reverse sweep — no scheduling required.
//!
//! The executor also exposes [`Graph::forward_collect`], which returns the
//! activations of caller-selected nodes alongside the output. DeepMorph
//! uses this to extract the *data flow footprints* (intermediate outputs of
//! hidden layers) that the paper's analysis is built on.

use deepmorph_tensor::backend::quant::Precision;
use deepmorph_tensor::backend::ComputeCtx;
use deepmorph_tensor::{workspace, Tensor};

use crate::layer::{Layer, Mode, Param};
use crate::state::{GraphTopology, StateDict, StateEntry, TopoNode};
use crate::{NnError, Result};

/// Identifier of a node in a [`Graph`] (or the graph input).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(usize);

impl NodeId {
    /// Sentinel referring to the graph's input tensor.
    pub const SOURCE: NodeId = NodeId(usize::MAX);

    /// The raw index (source returns `usize::MAX`).
    pub fn index(self) -> usize {
        self.0
    }

    /// `true` if this id refers to the graph input.
    pub fn is_source(self) -> bool {
        self == NodeId::SOURCE
    }
}

struct Node {
    layer: Box<dyn Layer>,
    inputs: Vec<NodeId>,
    label: String,
}

impl std::fmt::Debug for Node {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Node")
            .field("label", &self.label)
            .field("inputs", &self.inputs)
            .finish()
    }
}

/// Incrementally builds a [`Graph`] in topological order.
///
/// See the crate-level example for end-to-end usage.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    nodes: Vec<Node>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        GraphBuilder { nodes: Vec::new() }
    }

    /// The id of the graph input tensor.
    pub fn input(&self) -> NodeId {
        NodeId::SOURCE
    }

    /// Adds a layer consuming `inputs`, returning the new node's id.
    ///
    /// The node's label defaults to the layer name; use
    /// [`GraphBuilder::add_labeled`] to override.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidNode`] if an input refers to a node that
    /// does not exist yet (graphs must be built in topological order) and
    /// [`NnError::ArityMismatch`] if the input count disagrees with the
    /// layer's arity.
    pub fn add_layer(&mut self, layer: impl Layer + 'static, inputs: &[NodeId]) -> Result<NodeId> {
        let label = layer.name().to_string();
        self.add_labeled(layer, inputs, &label)
    }

    /// Adds a layer with an explicit label (used in probe/footprint reports).
    ///
    /// # Errors
    ///
    /// Same conditions as [`GraphBuilder::add_layer`].
    pub fn add_labeled(
        &mut self,
        layer: impl Layer + 'static,
        inputs: &[NodeId],
        label: &str,
    ) -> Result<NodeId> {
        if inputs.len() != layer.arity() {
            return Err(NnError::ArityMismatch {
                layer: layer.name().to_string(),
                expected: layer.arity(),
                actual: inputs.len(),
            });
        }
        for &input in inputs {
            if !input.is_source() && input.0 >= self.nodes.len() {
                return Err(NnError::InvalidNode {
                    id: input.0,
                    reason: "input node does not exist yet (topological order required)",
                });
            }
        }
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            layer: Box::new(layer),
            inputs: inputs.to_vec(),
            label: label.to_string(),
        });
        Ok(id)
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Finalizes the graph with `output` as the terminal node.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidNode`] if `output` does not exist or is
    /// the source.
    pub fn build(self, output: NodeId) -> Result<Graph> {
        if output.is_source() || output.0 >= self.nodes.len() {
            return Err(NnError::InvalidNode {
                id: output.0,
                reason: "output node does not exist",
            });
        }
        Ok(Graph {
            nodes: self.nodes,
            output,
            slots: Vec::new(),
            grad_slots: Vec::new(),
            ready: false,
            ctx: ComputeCtx::default(),
            precision: Precision::F32,
        })
    }
}

/// A feed-forward computation DAG over a single input tensor.
///
/// The executor owns two persistent slot vectors (activations during the
/// forward sweep, gradients during backward) and recycles every retired
/// tensor into the thread's workspace arena, so a warm train step drives
/// the whole graph without heap allocations beyond what individual layers
/// need.
#[derive(Debug)]
pub struct Graph {
    nodes: Vec<Node>,
    output: NodeId,
    /// Reusable activation slots for the current forward sweep.
    slots: Vec<Option<Tensor>>,
    /// Reusable gradient slots for the backward sweep.
    grad_slots: Vec<Option<Tensor>>,
    /// Set by a training-mode forward; gates [`Graph::backward`].
    ready: bool,
    /// Compute context every layer kernel dispatches through (scalar by
    /// default; installed into the layers by [`Graph::bind_compute`]).
    ctx: ComputeCtx,
    /// Serving precision the parameters were last re-expressed at.
    precision: Precision,
}

impl Graph {
    /// Runs the graph and returns the output of the terminal node.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let (out, _) = self.forward_collect(x, mode, &[])?;
        Ok(out)
    }

    /// Inference entry point for serving replicas: an eval-mode forward
    /// that is guaranteed to leave no backward state behind.
    ///
    /// Numerically identical (bitwise) to `forward(x, Mode::Eval)` — and,
    /// because every layer computes each batch row independently in eval
    /// mode, the rows of a coalesced batch are bitwise identical to the
    /// same inputs run one at a time. On top of the eval forward this
    /// clears the `ready` latch a previous *training* forward may have
    /// left set, so a stray [`Graph::backward`] on a serving replica is a
    /// typed [`NnError::MissingActivation`] instead of silently consuming
    /// stale caches.
    ///
    /// # Errors
    ///
    /// Propagates layer shape errors.
    pub fn forward_inference(&mut self, x: &Tensor) -> Result<Tensor> {
        let out = self.forward(x, Mode::Eval)?;
        self.ready = false;
        Ok(out)
    }

    /// Runs the graph, additionally returning the activations of `collect`
    /// (in the same order). This is the footprint-extraction entry point.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidNode`] for unknown ids in `collect`, and
    /// propagates layer errors.
    pub fn forward_collect(
        &mut self,
        x: &Tensor,
        mode: Mode,
        collect: &[NodeId],
    ) -> Result<(Tensor, Vec<Tensor>)> {
        for &id in collect {
            if id.is_source() || id.0 >= self.nodes.len() {
                return Err(NnError::InvalidNode {
                    id: id.0,
                    reason: "collect node does not exist",
                });
            }
        }
        // Recycle anything a previous (possibly aborted) sweep left behind
        // and make sure one slot exists per node.
        for slot in &mut self.slots {
            workspace::recycle_opt(slot.take());
        }
        self.slots.resize_with(self.nodes.len(), || None);

        let Graph { nodes, slots, .. } = &mut *self;
        for idx in 0..nodes.len() {
            let Node { layer, inputs, .. } = &mut nodes[idx];
            let resolve = |id: &NodeId| -> Result<&Tensor> {
                if id.is_source() {
                    Ok(x)
                } else {
                    slots[id.0].as_ref().ok_or(NnError::InvalidNode {
                        id: id.0,
                        reason: "input activation missing (cycle?)",
                    })
                }
            };
            // Arity is ≤ 2 for every layer in this workspace; resolve into
            // an inline buffer (no per-node Vec), with a heap fallback for
            // hypothetical wider layers.
            let mut inline: [&Tensor; 2] = [x, x];
            let spill: Vec<&Tensor>;
            let input_refs: &[&Tensor] = if inputs.len() <= inline.len() {
                for (slot, id) in inline.iter_mut().zip(inputs.iter()) {
                    *slot = resolve(id)?;
                }
                &inline[..inputs.len()]
            } else {
                spill = inputs.iter().map(resolve).collect::<Result<_>>()?;
                &spill
            };
            let out = layer.forward(input_refs, mode)?;
            slots[idx] = Some(out);
        }
        let collected = collect
            .iter()
            .map(|id| {
                self.slots[id.0]
                    .as_ref()
                    .expect("validated above")
                    .pooled_clone()
            })
            .collect();
        let final_out = self.slots[self.output.0].take().expect("output computed");
        // The sweep is over: every remaining activation is dead, so it
        // goes straight back to the arena (layers keep their own caches).
        for slot in &mut self.slots {
            workspace::recycle_opt(slot.take());
        }
        if mode == Mode::Train {
            self.ready = true;
        }
        Ok((final_out, collected))
    }

    /// Backpropagates `grad` (w.r.t. the terminal node's output),
    /// accumulating parameter gradients in every layer.
    ///
    /// Must follow a training-mode forward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MissingActivation`] if no training forward has
    /// been run.
    pub fn backward(&mut self, grad: &Tensor) -> Result<()> {
        if !self.ready {
            return Err(NnError::MissingActivation {
                layer: "graph".into(),
            });
        }
        for slot in &mut self.grad_slots {
            workspace::recycle_opt(slot.take());
        }
        self.grad_slots.resize_with(self.nodes.len(), || None);
        self.grad_slots[self.output.0] = Some(grad.pooled_clone());
        let Graph {
            nodes, grad_slots, ..
        } = &mut *self;
        for idx in (0..nodes.len()).rev() {
            let Some(g) = grad_slots[idx].take() else {
                continue; // node does not influence the output
            };
            let node = &mut nodes[idx];
            let input_grads = node.layer.backward(&g)?;
            workspace::recycle_tensor(g);
            debug_assert_eq!(input_grads.len(), node.inputs.len());
            for (id, ig) in node.inputs.iter().zip(input_grads) {
                if id.is_source() {
                    // Gradients w.r.t. the data are not needed.
                    workspace::recycle_tensor(ig);
                    continue;
                }
                match &mut grad_slots[id.0] {
                    Some(existing) => {
                        existing.add_assign_tensor(&ig)?;
                        workspace::recycle_tensor(ig);
                    }
                    slot @ None => *slot = Some(ig),
                }
            }
        }
        Ok(())
    }

    /// Installs `ctx` as the compute context of this graph and every layer
    /// in it — the explicit seam a caller (trainer, serving scheduler)
    /// uses to pick a backend instead of kernels consulting globals. A
    /// freshly built graph runs on the scalar (bitwise-reference) context.
    pub fn bind_compute(&mut self, ctx: &ComputeCtx) {
        self.ctx = ctx.clone();
        for node in &mut self.nodes {
            node.layer.bind_compute(ctx);
        }
    }

    /// The compute context installed by [`Graph::bind_compute`] (the
    /// default scalar context otherwise).
    pub fn compute_ctx(&self) -> &ComputeCtx {
        &self.ctx
    }

    /// Re-expresses every layer's parameters at `precision` (see
    /// [`Layer::apply_precision`]). Lossy and irreversible: serving
    /// replicas call this once after instantiation; training and diagnosis
    /// graphs never do.
    ///
    /// # Errors
    ///
    /// Propagates the first layer rejection (no provided layer rejects).
    pub fn apply_precision(&mut self, precision: Precision) -> Result<()> {
        for node in &mut self.nodes {
            node.layer.apply_precision(precision)?;
        }
        self.precision = precision;
        Ok(())
    }

    /// The precision the parameters were last re-expressed at
    /// ([`Precision::F32`] for a graph never touched by
    /// [`Graph::apply_precision`]).
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Visits every trainable parameter in a stable order.
    pub fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        for node in &mut self.nodes {
            node.layer.visit_params(visitor);
        }
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut Param::zero_grad);
    }

    /// Total number of trainable scalars.
    pub fn param_count(&mut self) -> usize {
        let mut count = 0;
        self.visit_params(&mut |p| count += p.len());
        count
    }

    /// Number of nodes (layers) in the graph.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` for a graph with no nodes (cannot be constructed normally).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The terminal node id.
    pub fn output_id(&self) -> NodeId {
        self.output
    }

    /// Label of a node, if it exists.
    pub fn label(&self, id: NodeId) -> Option<&str> {
        self.nodes.get(id.0).map(|n| n.label.as_str())
    }

    /// Ids and labels of every node, in topological order.
    pub fn node_labels(&self) -> Vec<(NodeId, &str)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i), n.label.as_str()))
            .collect()
    }

    /// Snapshots the graph wiring (labels, input edges, terminal node) for
    /// serialization alongside a [`StateDict`]. A loader compares this
    /// against the freshly built graph's topology before importing state.
    pub fn topology(&self) -> GraphTopology {
        GraphTopology {
            nodes: self
                .nodes
                .iter()
                .map(|n| TopoNode {
                    label: n.label.clone(),
                    inputs: n
                        .inputs
                        .iter()
                        .map(|id| {
                            if id.is_source() {
                                u64::MAX
                            } else {
                                id.0 as u64
                            }
                        })
                        .collect(),
                })
                .collect(),
            output: self.output.0 as u64,
        }
    }

    /// Exports every persistent tensor — trainable parameters and the
    /// extra buffers layers report via
    /// [`Layer::export_state`] — as an
    /// ordered, keyed [`StateDict`]. The walk order is the node order, so
    /// it is stable for a given architecture.
    pub fn export_state(&mut self) -> StateDict {
        let mut entries = Vec::new();
        for (idx, node) in self.nodes.iter_mut().enumerate() {
            let label = node.label.clone();
            let mut j = 0usize;
            node.layer.visit_params(&mut |p| {
                entries.push(StateEntry {
                    key: format!("n{idx}.{label}.p{j}"),
                    value: p.value.clone(),
                });
                j += 1;
            });
            for (name, values) in node.layer.export_state() {
                let len = values.len();
                entries.push(StateEntry {
                    key: format!("n{idx}.{label}.{name}"),
                    value: Tensor::from_vec(values, &[len]).expect("rank-1 buffer"),
                });
            }
        }
        StateDict { entries }
    }

    /// Imports a [`StateDict`] produced by [`Graph::export_state`] on a
    /// structurally identical graph. Every key, shape, and buffer length
    /// is verified before any tensor is copied, so a key/shape/count
    /// mismatch leaves the graph's parameters untouched. (A layer whose
    /// [`Layer::import_state`] rejects entries its own `export_state`
    /// format accepts can still fail mid-copy; no such layer exists in
    /// this workspace.)
    ///
    /// # Errors
    ///
    /// Returns [`NnError::StateMismatch`] on any key, shape, or count
    /// disagreement.
    pub fn import_state(&mut self, dict: &StateDict) -> Result<()> {
        // Pass 1: verify the full walk against the dict.
        let mut cursor = 0usize;
        let mismatch = |reason: String| NnError::StateMismatch { reason };
        for (idx, node) in self.nodes.iter_mut().enumerate() {
            let label = node.label.clone();
            let mut j = 0usize;
            let mut first_err: Option<NnError> = None;
            node.layer.visit_params(&mut |p| {
                let key = format!("n{idx}.{label}.p{j}");
                match dict.entries.get(cursor) {
                    Some(entry) if entry.key == key && entry.value.shape() == p.value.shape() => {}
                    Some(entry) if entry.key == key => {
                        first_err.get_or_insert(NnError::StateMismatch {
                            reason: format!(
                                "`{key}` has shape {:?}, graph expects {:?}",
                                entry.value.shape(),
                                p.value.shape()
                            ),
                        });
                    }
                    Some(entry) => {
                        first_err.get_or_insert(NnError::StateMismatch {
                            reason: format!("expected key `{key}`, found `{}`", entry.key),
                        });
                    }
                    None => {
                        first_err.get_or_insert(NnError::StateMismatch {
                            reason: format!("state dict ends before `{key}`"),
                        });
                    }
                }
                cursor += 1;
                j += 1;
            });
            if let Some(e) = first_err {
                return Err(e);
            }
            for (name, values) in node.layer.export_state() {
                let key = format!("n{idx}.{label}.{name}");
                match dict.entries.get(cursor) {
                    Some(entry) if entry.key == key && entry.value.len() == values.len() => {}
                    Some(entry) if entry.key == key => {
                        return Err(mismatch(format!(
                            "`{key}` has {} values, layer expects {}",
                            entry.value.len(),
                            values.len()
                        )));
                    }
                    Some(entry) => {
                        return Err(mismatch(format!(
                            "expected key `{key}`, found `{}`",
                            entry.key
                        )));
                    }
                    None => return Err(mismatch(format!("state dict ends before `{key}`"))),
                }
                cursor += 1;
            }
        }
        if cursor != dict.entries.len() {
            return Err(mismatch(format!(
                "state dict has {} entries, graph consumes {cursor}",
                dict.entries.len()
            )));
        }

        // Pass 2: copy. Every entry is pre-verified against the walk, so
        // this cannot fail halfway. Buffer names come from the layer's own
        // `export_state` (the authority pass 1 verified the keys against),
        // not from re-parsing the key strings — a label containing '.'
        // cannot mangle them.
        let mut cursor = 0usize;
        for node in &mut self.nodes {
            node.layer.visit_params(&mut |p| {
                let entry = &dict.entries[cursor];
                p.value
                    .copy_from(&entry.value)
                    .expect("shape verified in pass 1");
                cursor += 1;
            });
            let buffer_names: Vec<String> = node
                .layer
                .export_state()
                .into_iter()
                .map(|(name, _)| name)
                .collect();
            if !buffer_names.is_empty() {
                let extra: Vec<(String, Vec<f32>)> = buffer_names
                    .into_iter()
                    .zip(&dict.entries[cursor..])
                    .map(|(name, e)| {
                        cursor += 1;
                        (name, e.value.data().to_vec())
                    })
                    .collect();
                node.layer.import_state(&extra)?;
            }
        }
        Ok(())
    }

    /// Drops cached activations in the graph and all layers (recycling
    /// them through the workspace arena).
    pub fn clear_caches(&mut self) {
        for slot in &mut self.slots {
            workspace::recycle_opt(slot.take());
        }
        for slot in &mut self.grad_slots {
            workspace::recycle_opt(slot.take());
        }
        self.ready = false;
        for node in &mut self.nodes {
            node.layer.clear_cache();
        }
    }

    /// Convenience: eval-mode forward returning the predicted class of each
    /// row of the output logits.
    ///
    /// # Errors
    ///
    /// Propagates layer errors; the output must be rank 2.
    pub fn predict(&mut self, x: &Tensor) -> Result<Vec<usize>> {
        let logits = self.forward(x, Mode::Eval)?;
        let preds = logits.argmax_rows()?;
        workspace::recycle_tensor(logits);
        Ok(preds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::ReLU;
    use crate::dense::Dense;
    use crate::merge::Add;
    use deepmorph_tensor::init::stream_rng;

    fn linear_graph() -> Graph {
        let mut rng = stream_rng(1, "graph");
        let mut gb = GraphBuilder::new();
        let x = gb.input();
        let a = gb.add_layer(Dense::new(3, 4, &mut rng), &[x]).unwrap();
        let r = gb.add_layer(ReLU::new(), &[a]).unwrap();
        let b = gb.add_layer(Dense::new(4, 2, &mut rng), &[r]).unwrap();
        gb.build(b).unwrap()
    }

    #[test]
    fn forward_produces_output_shape() {
        let mut g = linear_graph();
        let x = Tensor::ones(&[5, 3]);
        let y = g.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.shape(), &[5, 2]);
    }

    #[test]
    fn forward_collect_returns_intermediates() {
        let mut g = linear_graph();
        let x = Tensor::ones(&[2, 3]);
        let ids: Vec<NodeId> = g.node_labels().iter().map(|(id, _)| *id).collect();
        let (_, collected) = g.forward_collect(&x, Mode::Eval, &ids).unwrap();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[0].shape(), &[2, 4]);
        assert_eq!(collected[2].shape(), &[2, 2]);
    }

    #[test]
    fn collect_rejects_unknown_node() {
        let mut g = linear_graph();
        let x = Tensor::ones(&[1, 3]);
        let bogus = NodeId(99);
        assert!(g.forward_collect(&x, Mode::Eval, &[bogus]).is_err());
    }

    #[test]
    fn builder_rejects_forward_reference() {
        let mut rng = stream_rng(2, "graph");
        let mut gb = GraphBuilder::new();
        let err = gb
            .add_layer(Dense::new(2, 2, &mut rng), &[NodeId(5)])
            .unwrap_err();
        assert!(matches!(err, NnError::InvalidNode { .. }));
    }

    #[test]
    fn builder_rejects_wrong_arity() {
        let mut gb = GraphBuilder::new();
        let x = gb.input();
        let err = gb.add_layer(Add::new(), &[x]).unwrap_err();
        assert!(matches!(err, NnError::ArityMismatch { .. }));
    }

    #[test]
    fn build_rejects_source_output() {
        let gb = GraphBuilder::new();
        assert!(gb.build(NodeId::SOURCE).is_err());
    }

    #[test]
    fn backward_requires_training_forward() {
        let mut g = linear_graph();
        let grad = Tensor::ones(&[1, 2]);
        assert!(g.backward(&grad).is_err());
    }

    #[test]
    fn forward_inference_matches_eval_and_disarms_backward() {
        let mut g = linear_graph();
        let x = Tensor::from_vec(vec![0.3, -0.2, 0.9, 0.4, 0.1, -0.6], &[2, 3]).unwrap();
        let eval = g.forward(&x, Mode::Eval).unwrap();
        let inf = g.forward_inference(&x).unwrap();
        for (a, b) in eval.data().iter().zip(inf.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // A training forward arms backward; an interleaved inference
        // forward must disarm it again (serving replicas never train).
        let _ = g.forward(&x, Mode::Train).unwrap();
        let _ = g.forward_inference(&x).unwrap();
        assert!(matches!(
            g.backward(&Tensor::ones(&[2, 2])).unwrap_err(),
            NnError::MissingActivation { .. }
        ));
    }

    #[test]
    fn batched_inference_rows_match_solo_rows_bitwise() {
        // The scheduler's micro-batching contract at the graph level: row
        // i of a batched eval forward equals the same input run alone.
        let mut g = linear_graph();
        let data: Vec<f32> = (0..4 * 3)
            .map(|i| ((i * 29) % 13) as f32 * 0.11 - 0.7)
            .collect();
        let batch = Tensor::from_vec(data.clone(), &[4, 3]).unwrap();
        let batched = g.forward_inference(&batch).unwrap();
        for i in 0..4 {
            let solo_in = Tensor::from_vec(data[i * 3..(i + 1) * 3].to_vec(), &[1, 3]).unwrap();
            let solo = g.forward_inference(&solo_in).unwrap();
            for (a, b) in batched.row(i).unwrap().iter().zip(solo.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {i} diverged");
            }
        }
    }

    #[test]
    fn residual_graph_accumulates_gradients() {
        // y = relu(x W1) + x W2 ; check both branches receive gradient.
        let mut rng = stream_rng(3, "graph");
        let mut gb = GraphBuilder::new();
        let x = gb.input();
        let a = gb.add_layer(Dense::new(3, 3, &mut rng), &[x]).unwrap();
        let r = gb.add_layer(ReLU::new(), &[a]).unwrap();
        let b = gb.add_layer(Dense::new(3, 3, &mut rng), &[x]).unwrap();
        let s = gb.add_layer(Add::new(), &[r, b]).unwrap();
        let mut g = gb.build(s).unwrap();

        let input = Tensor::ones(&[2, 3]);
        let _ = g.forward(&input, Mode::Train).unwrap();
        g.zero_grad();
        g.backward(&Tensor::ones(&[2, 3])).unwrap();

        let mut nonzero_params = 0;
        g.visit_params(&mut |p| {
            if p.grad.data().iter().any(|&v| v != 0.0) {
                nonzero_params += 1;
            }
        });
        // Both dense layers (weight+bias each) should have gradients.
        assert_eq!(nonzero_params, 4);
    }

    #[test]
    fn shared_input_fanout_sums_gradients() {
        // y = (x W) + (x W') where both consume the same intermediate node.
        let mut rng = stream_rng(4, "graph");
        let mut gb = GraphBuilder::new();
        let x = gb.input();
        let h = gb.add_layer(Dense::new(2, 2, &mut rng), &[x]).unwrap();
        let a = gb.add_layer(Dense::new(2, 2, &mut rng), &[h]).unwrap();
        let b = gb.add_layer(Dense::new(2, 2, &mut rng), &[h]).unwrap();
        let s = gb.add_layer(Add::new(), &[a, b]).unwrap();
        let mut g = gb.build(s).unwrap();

        let input = Tensor::from_vec(vec![0.3, -0.6, 0.9, 0.1], &[2, 2]).unwrap();
        let _ = g.forward(&input, Mode::Train).unwrap();
        g.zero_grad();
        g.backward(&Tensor::ones(&[2, 2])).unwrap();

        // Gradient check on the first dense layer's weights: the fan-out
        // means its gradient is the sum of both downstream paths.
        let mut grads = Vec::new();
        g.visit_params(&mut |p| grads.push(p.clone()));
        let w0 = grads[0].clone();

        let eps = 1e-2;
        for i in 0..w0.value.len() {
            let perturb = |delta: f32, g: &mut Graph| {
                let mut j = 0;
                g.visit_params(&mut |p| {
                    if j == 0 {
                        p.value.data_mut()[i] += delta;
                    }
                    j += 1;
                });
            };
            perturb(eps, &mut g);
            let yp = g.forward(&input, Mode::Eval).unwrap().sum();
            perturb(-2.0 * eps, &mut g);
            let ym = g.forward(&input, Mode::Eval).unwrap().sum();
            perturb(eps, &mut g);
            let num = (yp - ym) / (2.0 * eps);
            let ana = w0.grad.data()[i];
            assert!(
                (num - ana).abs() < 0.05,
                "param {i}: numeric {num} analytic {ana}"
            );
        }
    }

    #[test]
    fn state_dict_round_trips_through_a_fresh_graph() {
        let mut g = linear_graph();
        let x = Tensor::from_vec(vec![0.3, -0.2, 0.9, 0.4, 0.1, -0.6], &[2, 3]).unwrap();
        let y_before = g.forward(&x, Mode::Eval).unwrap();
        let dict = g.export_state();
        assert_eq!(dict.len(), 4); // two dense layers × (weight, bias)

        // A differently seeded twin must reproduce the original exactly
        // after import.
        let mut rng = stream_rng(99, "graph");
        let mut gb = GraphBuilder::new();
        let xin = gb.input();
        let a = gb.add_layer(Dense::new(3, 4, &mut rng), &[xin]).unwrap();
        let r = gb.add_layer(ReLU::new(), &[a]).unwrap();
        let b = gb.add_layer(Dense::new(4, 2, &mut rng), &[r]).unwrap();
        let mut twin = gb.build(b).unwrap();
        twin.import_state(&dict).unwrap();
        let y_after = twin.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y_before.data(), y_after.data());
        assert_eq!(g.topology(), twin.topology());
    }

    #[test]
    fn import_rejects_mismatched_dicts() {
        let mut g = linear_graph();
        let mut dict = g.export_state();

        // Wrong shape.
        let mut bad_shape = dict.clone();
        bad_shape.entries[0].value = Tensor::zeros(&[2, 2]);
        assert!(matches!(
            g.import_state(&bad_shape).unwrap_err(),
            NnError::StateMismatch { .. }
        ));

        // Wrong key.
        let mut bad_key = dict.clone();
        bad_key.entries[1].key = "n9.bogus.p0".into();
        assert!(matches!(
            g.import_state(&bad_key).unwrap_err(),
            NnError::StateMismatch { .. }
        ));

        // Truncated dict.
        dict.entries.pop();
        assert!(matches!(
            g.import_state(&dict).unwrap_err(),
            NnError::StateMismatch { .. }
        ));
    }

    #[test]
    fn batchnorm_running_stats_round_trip() {
        use crate::norm::BatchNorm2d;
        let mut gb = GraphBuilder::new();
        let x = gb.input();
        let bn = gb.add_layer(BatchNorm2d::new(2), &[x]).unwrap();
        let mut g = gb.build(bn).unwrap();

        // Drive the running statistics away from their init values.
        let input = Tensor::from_vec(
            (0..16).map(|v| (v as f32 * 0.7).sin() * 3.0).collect(),
            &[2, 2, 2, 2],
        )
        .unwrap();
        for _ in 0..5 {
            let _ = g.forward(&input, Mode::Train).unwrap();
        }
        let y_before = g.forward(&input, Mode::Eval).unwrap();
        let dict = g.export_state();
        // gamma, beta, running_mean, running_var.
        assert_eq!(dict.len(), 4);

        let mut gb = GraphBuilder::new();
        let x = gb.input();
        let bn = gb.add_layer(BatchNorm2d::new(2), &[x]).unwrap();
        let mut twin = gb.build(bn).unwrap();
        twin.import_state(&dict).unwrap();
        let y_after = twin.forward(&input, Mode::Eval).unwrap();
        assert_eq!(y_before.data(), y_after.data());
    }

    #[test]
    fn bind_compute_propagates_and_stays_bitwise() {
        let mut g = linear_graph();
        let x = Tensor::from_vec(vec![0.4, -0.8, 0.2, 0.9, -0.1, 0.5], &[2, 3]).unwrap();
        let before = g.forward(&x, Mode::Eval).unwrap();
        assert_eq!(g.compute_ctx().backend_name(), "scalar");
        // Auto resolves to scalar on default builds and to the SIMD
        // backend under --features simd; either way the graph must accept
        // the context and keep producing valid outputs. The scalar-vs-
        // scalar case (default build) is additionally bitwise.
        g.bind_compute(&ComputeCtx::auto());
        let after = g.forward(&x, Mode::Eval).unwrap();
        assert_eq!(after.shape(), before.shape());
        if g.compute_ctx().backend_name() == "scalar" {
            assert_eq!(before.data(), after.data());
        }
        g.bind_compute(&ComputeCtx::scalar());
        let back = g.forward(&x, Mode::Eval).unwrap();
        assert_eq!(before.data(), back.data());
    }

    #[test]
    fn apply_precision_round_trips_the_flag_and_degrades_gracefully() {
        use deepmorph_tensor::backend::quant::Precision;
        let mut g = linear_graph();
        assert_eq!(g.precision(), Precision::F32);
        let x = Tensor::from_vec(vec![0.3, -0.2, 0.9, 0.4, 0.1, -0.6], &[2, 3]).unwrap();
        let exact = g.forward(&x, Mode::Eval).unwrap();
        g.apply_precision(Precision::I8).unwrap();
        assert_eq!(g.precision(), Precision::I8);
        let lossy = g.forward(&x, Mode::Eval).unwrap();
        for (a, b) in lossy.data().iter().zip(exact.data()) {
            assert!((a - b).abs() < 0.1, "i8 output {a} strayed from f32 {b}");
        }
    }

    #[test]
    fn labels_are_reported_in_order() {
        let g = linear_graph();
        let labels = g.node_labels();
        assert_eq!(labels.len(), 3);
        assert!(labels[0].1.starts_with("dense"));
        assert_eq!(labels[1].1, "relu");
    }
}
