//! Fully-connected layer.

use deepmorph_tensor::backend::quant::{self, Precision, QuantizedMat};
use deepmorph_tensor::backend::ComputeCtx;
use deepmorph_tensor::{init::Init, workspace, Tensor};
use rand::Rng;

use crate::layer::{Grads, Layer, Mode, Param};
use crate::{NnError, Result};

/// Fully-connected (affine) layer: `y = x W^T + b`.
///
/// `x` is `[n, in_features]`, `W` is `[out_features, in_features]`, `b` is
/// `[out_features]`.
///
/// Every product dispatches through the layer's [`ComputeCtx`] (scalar by
/// default; see [`Layer::bind_compute`]). An [`Layer::apply_precision`]
/// call with [`Precision::I8`] builds an integer weight path the eval-mode
/// forward uses instead of the f32 GEMM.
#[derive(Debug)]
pub struct Dense {
    name: String,
    in_features: usize,
    out_features: usize,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
    ctx: ComputeCtx,
    qweight: Option<QuantizedMat>,
}

impl Dense {
    /// Creates a dense layer with He-normal weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut impl Rng) -> Self {
        Dense::with_init(in_features, out_features, Init::HeNormal, rng)
    }

    /// Creates a dense layer with a specific weight initializer.
    pub fn with_init(
        in_features: usize,
        out_features: usize,
        init: Init,
        rng: &mut impl Rng,
    ) -> Self {
        let weight = Param::new(init.materialize(
            &[out_features, in_features],
            in_features,
            out_features,
            rng,
        ));
        let bias = Param::new(Tensor::zeros(&[out_features]));
        Dense {
            name: format!("dense[{in_features}->{out_features}]"),
            in_features,
            out_features,
            weight,
            bias,
            cached_input: None,
            ctx: ComputeCtx::default(),
            qweight: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Read access to the weight matrix (tests, inspection).
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }
}

impl Layer for Dense {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Result<Tensor> {
        let x = single_input(inputs, &self.name)?;
        x.expect_rank(2, "dense forward")?;
        let quantized = self
            .qweight
            .as_ref()
            .filter(|q| mode == Mode::Eval && x.shape()[1] == q.cols());
        let mut y = match quantized {
            Some(q) => {
                let m = x.shape()[0];
                let mut y = workspace::tensor_raw(&[m, self.out_features]);
                quant::qgemm_nt(x.data(), q, y.data_mut(), m);
                y
            }
            None => self.ctx.matmul_nt(x, &self.weight.value)?,
        };
        y.add_row_broadcast(&self.bias.value)?;
        if mode == Mode::Train {
            // Pooled copy for the backward pass; the previous batch's copy
            // cycles back through the arena.
            workspace::recycle_opt(self.cached_input.replace(x.pooled_clone()));
        }
        Ok(y)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Grads> {
        let x = self
            .cached_input
            .as_ref()
            .ok_or_else(|| NnError::MissingActivation {
                layer: self.name.clone(),
            })?;
        // dW = g^T x : [out, n] @ [n, in] -> [out, in]
        let dw = self.ctx.matmul_tn(grad, x)?;
        self.weight.grad.add_assign_tensor(&dw)?;
        workspace::recycle_tensor(dw);
        // db = column sums of g.
        let db = grad.sum_axis0()?;
        self.bias.grad.add_assign_tensor(&db)?;
        workspace::recycle_tensor(db);
        // dx = g W : [n, out] @ [out, in] -> [n, in]
        let dx = self.ctx.matmul(grad, &self.weight.value)?;
        Ok(Grads::one(dx))
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
        visitor(&mut self.bias);
    }

    fn clear_cache(&mut self) {
        workspace::recycle_opt(self.cached_input.take());
    }

    fn bind_compute(&mut self, ctx: &ComputeCtx) {
        self.ctx = ctx.clone();
    }

    fn apply_precision(&mut self, precision: Precision) -> Result<()> {
        match precision {
            Precision::F32 => self.qweight = None,
            Precision::F16 => {
                quant::f16_round_slice(self.weight.value.data_mut());
                quant::f16_round_slice(self.bias.value.data_mut());
                self.qweight = None;
            }
            Precision::I8 => {
                self.qweight = Some(QuantizedMat::from_rows(
                    self.weight.value.data(),
                    self.out_features,
                    self.in_features,
                ));
                quant::f16_round_slice(self.bias.value.data_mut());
            }
        }
        Ok(())
    }
}

/// Extracts the single input of a unary layer.
pub(crate) fn single_input<'a>(inputs: &[&'a Tensor], name: &str) -> Result<&'a Tensor> {
    if inputs.len() != 1 {
        return Err(NnError::ArityMismatch {
            layer: name.to_string(),
            expected: 1,
            actual: inputs.len(),
        });
    }
    Ok(inputs[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmorph_tensor::init::stream_rng;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = stream_rng(1, "dense");
        let mut layer = Dense::new(3, 2, &mut rng);
        layer.bias.value = Tensor::from_slice(&[1.0, -1.0]);
        let x = Tensor::zeros(&[4, 3]);
        let y = layer.forward(&[&x], Mode::Eval).unwrap();
        assert_eq!(y.shape(), &[4, 2]);
        // Zero input → output equals bias.
        assert_eq!(y.row(0).unwrap(), &[1.0, -1.0]);
    }

    #[test]
    fn backward_requires_forward() {
        let mut rng = stream_rng(1, "dense");
        let mut layer = Dense::new(3, 2, &mut rng);
        let g = Tensor::ones(&[1, 2]);
        assert!(matches!(
            layer.backward(&g).unwrap_err(),
            NnError::MissingActivation { .. }
        ));
    }

    #[test]
    fn gradient_check() {
        // Numerical vs analytic gradient on a scalar loss L = sum(y).
        let mut rng = stream_rng(2, "dense");
        let mut layer = Dense::new(3, 2, &mut rng);
        let x = Tensor::from_vec(vec![0.5, -0.3, 0.8, 0.1, 0.9, -0.7], &[2, 3]).unwrap();
        let _ = layer.forward(&[&x], Mode::Train).unwrap();
        let gout = Tensor::ones(&[2, 2]);
        let gin = layer.backward(&gout).unwrap().into_first();

        let eps = 1e-3;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let yp = layer.forward(&[&xp], Mode::Eval).unwrap().sum();
            let ym = layer.forward(&[&xm], Mode::Eval).unwrap().sum();
            let num = (yp - ym) / (2.0 * eps);
            let ana = gin.data()[i];
            assert!(
                (num - ana).abs() < 1e-2,
                "input grad {i}: numeric {num} analytic {ana}"
            );
        }
    }

    #[test]
    fn weight_gradient_check() {
        let mut rng = stream_rng(3, "dense");
        let mut layer = Dense::new(2, 2, &mut rng);
        let x = Tensor::from_vec(vec![0.2, -0.4, 0.6, 0.8], &[2, 2]).unwrap();
        let _ = layer.forward(&[&x], Mode::Train).unwrap();
        let gout = Tensor::ones(&[2, 2]);
        let _ = layer.backward(&gout).unwrap();
        let analytic = layer.weight.grad.clone();

        let eps = 1e-3;
        for i in 0..layer.weight.value.len() {
            let orig = layer.weight.value.data()[i];
            layer.weight.value.data_mut()[i] = orig + eps;
            let yp = layer.forward(&[&x], Mode::Eval).unwrap().sum();
            layer.weight.value.data_mut()[i] = orig - eps;
            let ym = layer.forward(&[&x], Mode::Eval).unwrap().sum();
            layer.weight.value.data_mut()[i] = orig;
            let num = (yp - ym) / (2.0 * eps);
            assert!(
                (num - analytic.data()[i]).abs() < 1e-2,
                "weight grad {i}: numeric {num} analytic {}",
                analytic.data()[i]
            );
        }
    }

    #[test]
    fn param_count() {
        let mut rng = stream_rng(4, "dense");
        let mut layer = Dense::new(10, 5, &mut rng);
        assert_eq!(layer.param_count(), 10 * 5 + 5);
    }

    #[test]
    fn bound_context_is_bitwise_identical() {
        let mut rng = stream_rng(5, "dense");
        let mut layer = Dense::new(4, 3, &mut rng);
        let x = Tensor::from_vec((0..8).map(|v| v as f32 * 0.3 - 1.0).collect(), &[2, 4]).unwrap();
        let before = layer.forward(&[&x], Mode::Eval).unwrap();
        layer.bind_compute(&ComputeCtx::scalar());
        let after = layer.forward(&[&x], Mode::Eval).unwrap();
        assert_eq!(before.data(), after.data());
    }

    #[test]
    fn i8_precision_quantizes_eval_forward_only() {
        let mut rng = stream_rng(6, "dense");
        let mut layer = Dense::new(5, 4, &mut rng);
        let x =
            Tensor::from_vec((0..10).map(|v| (v as f32 * 0.7).sin()).collect(), &[2, 5]).unwrap();
        let f32_out = layer.forward(&[&x], Mode::Eval).unwrap();
        layer.apply_precision(Precision::I8).unwrap();
        let q = layer.qweight.as_ref().expect("i8 weight path");
        assert_eq!((q.rows(), q.cols()), (4, 5));
        let q_out = layer.forward(&[&x], Mode::Eval).unwrap();
        // Quantized result tracks f32 within the i8 step budget but is a
        // genuinely different kernel, while the train-mode forward keeps
        // running the f32 path against the stored weights.
        for (a, b) in q_out.data().iter().zip(f32_out.data()) {
            assert!((a - b).abs() < 0.1, "quantized {a} vs f32 {b}");
        }
        let t_out = layer.forward(&[&x], Mode::Train).unwrap();
        let deq = layer.qweight.as_ref().unwrap().dequantize();
        assert_ne!(deq, layer.weight.value.data());
        assert_eq!(t_out.shape(), &[2, 4]);
        // Demoting back to f32 drops the integer path (weights stay as-is).
        layer.apply_precision(Precision::F32).unwrap();
        assert!(layer.qweight.is_none());
    }

    #[test]
    fn f16_precision_rounds_parameters() {
        let mut rng = stream_rng(7, "dense");
        let mut layer = Dense::new(3, 2, &mut rng);
        layer.apply_precision(Precision::F16).unwrap();
        for &w in layer.weight.value.data() {
            assert_eq!(quant::f16_round(w), w, "weight not f16-representable");
        }
        assert!(layer.qweight.is_none());
    }
}
