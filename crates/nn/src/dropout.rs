//! Inverted dropout.

use deepmorph_tensor::{workspace, Tensor};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::dense::single_input;
use crate::layer::{Grads, Layer, Mode};
use crate::{NnError, Result};

/// Inverted dropout: in training mode zeroes each activation with
/// probability `p` and scales survivors by `1/(1-p)`; evaluation mode is the
/// identity.
///
/// The layer owns its RNG (seeded at construction) so that a training run
/// is reproducible without threading an RNG through the graph executor.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: ChaCha8Rng,
    /// Persistent mask buffer, refilled (capacity reused) each training
    /// forward.
    mask: Vec<f32>,
    has_mask: bool,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` (clamped to
    /// `[0, 0.95]`) and an RNG seed.
    pub fn new(p: f32, seed: u64) -> Self {
        Dropout {
            p: p.clamp(0.0, 0.95),
            rng: ChaCha8Rng::seed_from_u64(seed),
            mask: Vec::new(),
            has_mask: false,
        }
    }

    /// The configured drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn name(&self) -> &str {
        "dropout"
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Result<Tensor> {
        let x = single_input(inputs, "dropout")?;
        match mode {
            Mode::Eval => Ok(x.pooled_clone()),
            Mode::Train => {
                let keep = 1.0 - self.p;
                let scale = 1.0 / keep;
                self.mask.clear();
                self.mask.extend((0..x.len()).map(|_| {
                    if self.rng.gen::<f32>() < keep {
                        scale
                    } else {
                        0.0
                    }
                }));
                self.has_mask = true;
                let mut out = workspace::tensor_raw(x.shape());
                for ((o, &v), &m) in out.data_mut().iter_mut().zip(x.data()).zip(&self.mask) {
                    *o = v * m;
                }
                Ok(out)
            }
        }
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Grads> {
        if !self.has_mask || self.mask.len() != grad.len() {
            return Err(NnError::MissingActivation {
                layer: "dropout".into(),
            });
        }
        let mut out = workspace::tensor_raw(grad.shape());
        for ((o, &g), &m) in out.data_mut().iter_mut().zip(grad.data()).zip(&self.mask) {
            *o = g * m;
        }
        Ok(Grads::one(out))
    }

    fn clear_cache(&mut self) {
        self.mask = Vec::new();
        self.has_mask = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut l = Dropout::new(0.5, 1);
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let y = l.forward(&[&x], Mode::Eval).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn train_preserves_expectation() {
        let mut l = Dropout::new(0.5, 42);
        let x = Tensor::ones(&[10_000]);
        let y = l.forward(&[&x], Mode::Train).unwrap();
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // Survivors are scaled by 2.
        assert!(y.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn backward_reuses_mask() {
        let mut l = Dropout::new(0.5, 7);
        let x = Tensor::ones(&[100]);
        let y = l.forward(&[&x], Mode::Train).unwrap();
        let g = l.backward(&Tensor::ones(&[100])).unwrap().into_first();
        for (yv, gv) in y.data().iter().zip(g.data()) {
            assert_eq!(yv, gv);
        }
    }

    #[test]
    fn zero_probability_is_identity_in_train() {
        let mut l = Dropout::new(0.0, 3);
        let x = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        let y = l.forward(&[&x], Mode::Train).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn probability_is_clamped() {
        let l = Dropout::new(2.0, 0);
        assert!(l.probability() <= 0.95);
    }
}
