//! Inverted dropout.

use deepmorph_tensor::Tensor;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::dense::single_input;
use crate::layer::{Layer, Mode};
use crate::{NnError, Result};

/// Inverted dropout: in training mode zeroes each activation with
/// probability `p` and scales survivors by `1/(1-p)`; evaluation mode is the
/// identity.
///
/// The layer owns its RNG (seeded at construction) so that a training run
/// is reproducible without threading an RNG through the graph executor.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: ChaCha8Rng,
    mask: Option<Vec<f32>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p` (clamped to
    /// `[0, 0.95]`) and an RNG seed.
    pub fn new(p: f32, seed: u64) -> Self {
        Dropout {
            p: p.clamp(0.0, 0.95),
            rng: ChaCha8Rng::seed_from_u64(seed),
            mask: None,
        }
    }

    /// The configured drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }
}

impl Layer for Dropout {
    fn name(&self) -> &str {
        "dropout"
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Result<Tensor> {
        let x = single_input(inputs, "dropout")?;
        match mode {
            Mode::Eval => Ok(x.clone()),
            Mode::Train => {
                let keep = 1.0 - self.p;
                let scale = 1.0 / keep;
                let mask: Vec<f32> = (0..x.len())
                    .map(|_| {
                        if self.rng.gen::<f32>() < keep {
                            scale
                        } else {
                            0.0
                        }
                    })
                    .collect();
                let mut out = x.clone();
                for (v, &m) in out.data_mut().iter_mut().zip(&mask) {
                    *v *= m;
                }
                self.mask = Some(mask);
                Ok(out)
            }
        }
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Vec<Tensor>> {
        let mask = self
            .mask
            .as_ref()
            .ok_or_else(|| NnError::MissingActivation {
                layer: "dropout".into(),
            })?;
        let mut out = grad.clone();
        for (v, &m) in out.data_mut().iter_mut().zip(mask) {
            *v *= m;
        }
        Ok(vec![out])
    }

    fn clear_cache(&mut self) {
        self.mask = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_identity() {
        let mut l = Dropout::new(0.5, 1);
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let y = l.forward(&[&x], Mode::Eval).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn train_preserves_expectation() {
        let mut l = Dropout::new(0.5, 42);
        let x = Tensor::ones(&[10_000]);
        let y = l.forward(&[&x], Mode::Train).unwrap();
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // Survivors are scaled by 2.
        assert!(y.data().iter().all(|&v| v == 0.0 || (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn backward_reuses_mask() {
        let mut l = Dropout::new(0.5, 7);
        let x = Tensor::ones(&[100]);
        let y = l.forward(&[&x], Mode::Train).unwrap();
        let g = l.backward(&Tensor::ones(&[100])).unwrap().remove(0);
        for (yv, gv) in y.data().iter().zip(g.data()) {
            assert_eq!(yv, gv);
        }
    }

    #[test]
    fn zero_probability_is_identity_in_train() {
        let mut l = Dropout::new(0.0, 3);
        let x = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        let y = l.forward(&[&x], Mode::Train).unwrap();
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn probability_is_clamped() {
        let l = Dropout::new(2.0, 0);
        assert!(l.probability() <= 0.95);
    }
}
