//! 2-D convolution layer (im2col-lowered).

use deepmorph_tensor::backend::quant::{self, Precision, QuantizedMat};
use deepmorph_tensor::backend::ComputeCtx;
use deepmorph_tensor::conv::{col2im_mapped_into, im2col_mapped_into, Conv2dGeometry, Im2colMap};
use deepmorph_tensor::{init::Init, workspace, Tensor};
use rand::Rng;

use crate::dense::single_input;
use crate::layer::{Grads, Layer, Mode, Param};
use crate::{NnError, Result};

/// 2-D convolution over NCHW inputs.
///
/// Weights are stored flattened as `[out_channels, in_channels*kh*kw]` so
/// the forward pass is a single `patches @ W^T` product on the `im2col`
/// patch matrix. The geometry and its im2col gather table are computed once
/// per layer instance; per-batch buffers are drawn from (and recycled to)
/// the thread's workspace arena, so a warm train step performs no heap
/// allocations.
#[derive(Debug)]
pub struct Conv2d {
    name: String,
    geo: Conv2dGeometry,
    map: Im2colMap,
    weight: Param,
    bias: Param,
    cached_cols: Option<Tensor>,
    cached_batch: usize,
    ctx: ComputeCtx,
    qweight: Option<QuantizedMat>,
}

impl Conv2d {
    /// Creates a convolution with He-normal weights.
    ///
    /// The full input geometry must be known up front (all models in this
    /// workspace have static shapes), which lets the constructor validate
    /// once — and precompute the im2col index table once — instead of on
    /// every batch.
    ///
    /// # Errors
    ///
    /// Returns a geometry error if the kernel/stride/padding combination is
    /// inconsistent with the input size.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        in_h: usize,
        in_w: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        let geo = Conv2dGeometry::new(
            in_channels,
            out_channels,
            in_h,
            in_w,
            kernel,
            kernel,
            stride,
            padding,
        )?;
        let fan_in = in_channels * kernel * kernel;
        let fan_out = out_channels * kernel * kernel;
        let weight = Param::new(Init::HeNormal.materialize(
            &[out_channels, geo.patch_len()],
            fan_in,
            fan_out,
            rng,
        ));
        let bias = Param::new(Tensor::zeros(&[out_channels]));
        Ok(Conv2d {
            name: format!(
                "conv[{in_channels}->{out_channels} k{kernel} s{stride} p{padding} @{in_h}x{in_w}]"
            ),
            map: Im2colMap::new(&geo),
            geo,
            weight,
            bias,
            cached_cols: None,
            cached_batch: 0,
            ctx: ComputeCtx::default(),
            qweight: None,
        })
    }

    /// The validated convolution geometry.
    pub fn geometry(&self) -> &Conv2dGeometry {
        &self.geo
    }

    /// Output shape `[c, h, w]` (excluding batch).
    pub fn out_shape(&self) -> [usize; 3] {
        [self.geo.out_channels, self.geo.out_h, self.geo.out_w]
    }

    /// Permutes `[n*positions, out_c]` to NCHW `[n, out_c, oh, ow]`.
    ///
    /// Per-sample pure permutation, so the batch loop splits over threads
    /// (bitwise exact) via [`deepmorph_tensor::chunks`]. Every output
    /// element is written, so the buffer is a raw workspace checkout.
    fn cols_to_nchw(&self, y: &Tensor, n: usize) -> Tensor {
        let (oc, positions) = (self.geo.out_channels, self.geo.out_positions());
        let mut out = workspace::tensor_raw(&[n, oc, self.geo.out_h, self.geo.out_w]);
        let src = y.data();
        deepmorph_tensor::chunks::for_chunks_mut(
            out.data_mut(),
            oc * positions,
            deepmorph_tensor::chunks::PAR_GRAIN_ELEMS,
            |i, img| {
                for p in 0..positions {
                    let row = &src[(i * positions + p) * oc..(i * positions + p + 1) * oc];
                    for (ch, &v) in row.iter().enumerate() {
                        img[ch * positions + p] = v;
                    }
                }
            },
        );
        out
    }

    /// Permutes NCHW gradients back to `[n*positions, out_c]` (the inverse
    /// of [`Conv2d::cols_to_nchw`], parallel over samples the same way).
    fn nchw_to_cols(&self, g: &Tensor, n: usize) -> Tensor {
        let (oc, positions) = (self.geo.out_channels, self.geo.out_positions());
        let mut out = workspace::tensor_raw(&[n * positions, oc]);
        let src = g.data();
        deepmorph_tensor::chunks::for_chunks_mut(
            out.data_mut(),
            positions * oc,
            deepmorph_tensor::chunks::PAR_GRAIN_ELEMS,
            |i, img| {
                for ch in 0..oc {
                    for p in 0..positions {
                        img[p * oc + ch] = src[(i * oc + ch) * positions + p];
                    }
                }
            },
        );
        out
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, inputs: &[&Tensor], mode: Mode) -> Result<Tensor> {
        let x = single_input(inputs, &self.name)?;
        x.expect_rank(4, "conv2d forward")?;
        let n = x.shape()[0];
        let mut cols = workspace::tensor_raw(&[n * self.geo.out_positions(), self.geo.patch_len()]);
        im2col_mapped_into(x, &self.map, cols.data_mut())?;
        // [n*positions, patch] @ [out_c, patch]^T -> [n*positions, out_c]
        let quantized = self.qweight.as_ref().filter(|_| mode == Mode::Eval);
        let mut y = match quantized {
            Some(q) => {
                let m = n * self.geo.out_positions();
                let mut y = workspace::tensor_raw(&[m, self.geo.out_channels]);
                quant::qgemm_nt(cols.data(), q, y.data_mut(), m);
                y
            }
            None => self.ctx.matmul_nt(&cols, &self.weight.value)?,
        };
        y.add_row_broadcast(&self.bias.value)?;
        let out = self.cols_to_nchw(&y, n);
        workspace::recycle_tensor(y);
        if mode == Mode::Train {
            workspace::recycle_opt(self.cached_cols.replace(cols));
            self.cached_batch = n;
        } else {
            workspace::recycle_tensor(cols);
        }
        Ok(out)
    }

    fn backward(&mut self, grad: &Tensor) -> Result<Grads> {
        let cols = self
            .cached_cols
            .as_ref()
            .ok_or_else(|| NnError::MissingActivation {
                layer: self.name.clone(),
            })?;
        let n = self.cached_batch;
        let g_cols = self.nchw_to_cols(grad, n); // [n*pos, out_c]

        // dW = g_cols^T @ cols : [out_c, patch]
        let dw = self.ctx.matmul_tn(&g_cols, cols)?;
        self.weight.grad.add_assign_tensor(&dw)?;
        workspace::recycle_tensor(dw);
        let db = g_cols.sum_axis0()?;
        self.bias.grad.add_assign_tensor(&db)?;
        workspace::recycle_tensor(db);
        // d_cols = g_cols @ W : [n*pos, patch]
        let d_cols = self.ctx.matmul(&g_cols, &self.weight.value)?;
        workspace::recycle_tensor(g_cols);
        let mut dx =
            workspace::tensor_raw(&[n, self.geo.in_channels, self.geo.in_h, self.geo.in_w]);
        col2im_mapped_into(&d_cols, &self.map, n, dx.data_mut())?;
        workspace::recycle_tensor(d_cols);
        Ok(Grads::one(dx))
    }

    fn visit_params(&mut self, visitor: &mut dyn FnMut(&mut Param)) {
        visitor(&mut self.weight);
        visitor(&mut self.bias);
    }

    fn clear_cache(&mut self) {
        workspace::recycle_opt(self.cached_cols.take());
    }

    fn bind_compute(&mut self, ctx: &ComputeCtx) {
        self.ctx = ctx.clone();
    }

    fn apply_precision(&mut self, precision: Precision) -> Result<()> {
        match precision {
            Precision::F32 => self.qweight = None,
            Precision::F16 => {
                quant::f16_round_slice(self.weight.value.data_mut());
                quant::f16_round_slice(self.bias.value.data_mut());
                self.qweight = None;
            }
            Precision::I8 => {
                self.qweight = Some(QuantizedMat::from_rows(
                    self.weight.value.data(),
                    self.geo.out_channels,
                    self.geo.patch_len(),
                ));
                quant::f16_round_slice(self.bias.value.data_mut());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmorph_tensor::init::stream_rng;

    #[test]
    fn forward_shape() {
        let mut rng = stream_rng(1, "conv");
        let mut layer = Conv2d::new(3, 8, 16, 16, 3, 1, 1, &mut rng).unwrap();
        let x = Tensor::zeros(&[2, 3, 16, 16]);
        let y = layer.forward(&[&x], Mode::Eval).unwrap();
        assert_eq!(y.shape(), &[2, 8, 16, 16]);
    }

    #[test]
    fn strided_forward_shape() {
        let mut rng = stream_rng(1, "conv");
        let mut layer = Conv2d::new(4, 8, 16, 16, 3, 2, 1, &mut rng).unwrap();
        let x = Tensor::zeros(&[1, 4, 16, 16]);
        let y = layer.forward(&[&x], Mode::Eval).unwrap();
        assert_eq!(y.shape(), &[1, 8, 8, 8]);
    }

    #[test]
    fn identity_kernel_preserves_input() {
        // 1x1 conv with identity weights on 1 channel.
        let mut rng = stream_rng(2, "conv");
        let mut layer = Conv2d::new(1, 1, 4, 4, 1, 1, 0, &mut rng).unwrap();
        layer.weight.value = Tensor::ones(&[1, 1]);
        let x = Tensor::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let y = layer.forward(&[&x], Mode::Eval).unwrap();
        assert_eq!(y.data(), x.data());
    }

    /// Central-difference derivative of `sum(layer(x))` w.r.t. `buf[i]`,
    /// perturbing in place and restoring — no full-tensor clones per
    /// checked element.
    fn numeric_grad(
        layer: &mut Conv2d,
        x: &mut Tensor,
        i: usize,
        eps: f32,
        perturb_weight: bool,
    ) -> f32 {
        let read = |layer: &mut Conv2d, x: &Tensor| layer.forward(&[x], Mode::Eval).unwrap().sum();
        let bump = |layer: &mut Conv2d, x: &mut Tensor, delta: f32| {
            let buf = if perturb_weight {
                layer.weight.value.data_mut()
            } else {
                x.data_mut()
            };
            buf[i] += delta;
        };
        bump(layer, x, eps);
        let yp = read(layer, x);
        bump(layer, x, -2.0 * eps);
        let ym = read(layer, x);
        bump(layer, x, eps); // restore
        (yp - ym) / (2.0 * eps)
    }

    #[test]
    fn gradient_check_small() {
        let mut rng = stream_rng(3, "conv");
        let mut layer = Conv2d::new(2, 3, 5, 5, 3, 1, 1, &mut rng).unwrap();
        let mut x = Tensor::from_vec(
            (0..50).map(|v| ((v * 7) % 11) as f32 * 0.1 - 0.5).collect(),
            &[1, 2, 5, 5],
        )
        .unwrap();
        let _ = layer.forward(&[&x], Mode::Train).unwrap();
        let gout = Tensor::ones(&[1, 3, 5, 5]);
        let gin = layer.backward(&gout).unwrap().into_first();

        let eps = 1e-2;
        for i in (0..x.len()).step_by(7) {
            let num = numeric_grad(&mut layer, &mut x, i, eps, false);
            let ana = gin.data()[i];
            assert!(
                (num - ana).abs() < 0.05,
                "input grad {i}: numeric {num} analytic {ana}"
            );
        }
    }

    #[test]
    fn weight_gradient_check_small() {
        let mut rng = stream_rng(4, "conv");
        let mut layer = Conv2d::new(1, 2, 4, 4, 3, 1, 1, &mut rng).unwrap();
        let mut x = Tensor::from_vec(
            (0..16).map(|v| (v as f32 * 0.13).sin()).collect(),
            &[1, 1, 4, 4],
        )
        .unwrap();
        let _ = layer.forward(&[&x], Mode::Train).unwrap();
        let gout = Tensor::ones(&[1, 2, 4, 4]);
        let _ = layer.backward(&gout).unwrap();
        let analytic = layer.weight.grad.clone();

        let eps = 1e-2;
        for i in 0..layer.weight.value.len() {
            let num = numeric_grad(&mut layer, &mut x, i, eps, true);
            assert!(
                (num - analytic.data()[i]).abs() < 0.05,
                "weight grad {i}: numeric {num} analytic {}",
                analytic.data()[i]
            );
        }
    }

    #[test]
    fn bias_shifts_all_outputs() {
        let mut rng = stream_rng(5, "conv");
        let mut layer = Conv2d::new(1, 1, 3, 3, 1, 1, 0, &mut rng).unwrap();
        layer.weight.value = Tensor::zeros(&[1, 1]);
        layer.bias.value = Tensor::from_slice(&[2.5]);
        let x = Tensor::ones(&[1, 1, 3, 3]);
        let y = layer.forward(&[&x], Mode::Eval).unwrap();
        assert!(y.data().iter().all(|&v| (v - 2.5).abs() < 1e-6));
    }
}
