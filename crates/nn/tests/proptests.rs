//! Property-based tests for the NN framework invariants.

use deepmorph_nn::prelude::*;
use deepmorph_nn::train::gather_batch;
use deepmorph_tensor::init::stream_rng;
use deepmorph_tensor::Tensor;
use proptest::prelude::*;

fn mlp(seed: u64, in_dim: usize, out_dim: usize) -> Graph {
    let mut rng = stream_rng(seed, "nn-prop");
    let mut gb = GraphBuilder::new();
    let x = gb.input();
    let h = gb.add_layer(Dense::new(in_dim, 8, &mut rng), &[x]).unwrap();
    let r = gb.add_layer(ReLU::new(), &[h]).unwrap();
    let o = gb
        .add_layer(Dense::new(8, out_dim, &mut rng), &[r])
        .unwrap();
    gb.build(o).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn eval_forward_is_deterministic(
        data in proptest::collection::vec(-3.0f32..3.0, 8),
        seed in 0u64..50,
    ) {
        let mut g = mlp(seed, 4, 3);
        let x = Tensor::from_vec(data, &[2, 4]).unwrap();
        let a = g.forward(&x, Mode::Eval).unwrap();
        let b = g.forward(&x, Mode::Eval).unwrap();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn loss_is_nonnegative_and_grads_sum_zero(
        logits in proptest::collection::vec(-5.0f32..5.0, 12),
        labels in proptest::collection::vec(0usize..4, 3),
    ) {
        let t = Tensor::from_vec(logits, &[3, 4]).unwrap();
        let (loss, grad) = SoftmaxCrossEntropy::new().compute(&t, &labels).unwrap();
        prop_assert!(loss >= -1e-5, "loss {loss}");
        for r in 0..3 {
            let s: f32 = grad.row(r).unwrap().iter().sum();
            prop_assert!(s.abs() < 1e-4, "row {r} grad sum {s}");
        }
    }

    #[test]
    fn gather_batch_matches_manual_rows(
        rows in 1usize..6,
        cols in 1usize..6,
        pick in proptest::collection::vec(0usize..6, 1..8),
    ) {
        let picks: Vec<usize> = pick.into_iter().filter(|&i| i < rows).collect();
        prop_assume!(!picks.is_empty());
        let x = Tensor::from_vec(
            (0..rows * cols).map(|v| v as f32).collect(),
            &[rows, cols],
        ).unwrap();
        let b = gather_batch(&x, &picks).unwrap();
        prop_assert_eq!(b.shape()[0], picks.len());
        for (out_row, &src) in picks.iter().enumerate() {
            prop_assert_eq!(b.row(out_row).unwrap(), x.row(src).unwrap());
        }
    }

    #[test]
    fn accuracy_is_fraction_of_matches(
        pairs in proptest::collection::vec((0usize..5, 0usize..5), 1..40),
    ) {
        let preds: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let labels: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        let acc = accuracy(&preds, &labels);
        prop_assert!((0.0..=1.0).contains(&acc));
        let manual = pairs.iter().filter(|(a, b)| a == b).count() as f32 / pairs.len() as f32;
        prop_assert!((acc - manual).abs() < 1e-6);
    }

    #[test]
    fn confusion_matrix_row_sums_equal_class_counts(
        pairs in proptest::collection::vec((0usize..4, 0usize..4), 1..40),
    ) {
        let preds: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let labels: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        let m = confusion_matrix(&preds, &labels, 4);
        for (c, row) in m.iter().enumerate() {
            let row_sum: usize = row.iter().sum();
            let count = labels.iter().filter(|&&l| l == c).count();
            prop_assert_eq!(row_sum, count);
        }
    }

    #[test]
    fn training_never_produces_nan(
        seed in 0u64..20,
        lr in 0.001f32..0.2,
    ) {
        let mut rng = stream_rng(seed, "nn-prop-data");
        let n = 16;
        let data: Vec<f32> = (0..n * 4)
            .map(|_| deepmorph_tensor::init::gaussian(&mut rng))
            .collect();
        let x = Tensor::from_vec(data, &[n, 4]).unwrap();
        let labels: Vec<usize> = (0..n).map(|i| i % 3).collect();
        let mut g = mlp(seed, 4, 3);
        let mut trainer = Trainer::new(TrainConfig {
            epochs: 3,
            batch_size: 8,
            learning_rate: lr,
            ..TrainConfig::default()
        });
        let report = trainer.fit(&mut g, &x, &labels, &mut rng).unwrap();
        prop_assert!(report.final_loss().is_finite());
        let y = g.forward(&x, Mode::Eval).unwrap();
        prop_assert!(y.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn clip_gradients_never_increases_norm(scale in 0.1f32..100.0) {
        let mut g = mlp(3, 4, 3);
        let x = Tensor::ones(&[4, 4]);
        let logits = g.forward(&x, Mode::Train).unwrap();
        let (_, grad) = SoftmaxCrossEntropy::new()
            .compute(&logits, &[0, 1, 2, 0])
            .unwrap();
        g.zero_grad();
        g.backward(&grad.scaled(scale)).unwrap();
        let before = clip_gradients(&mut g, 2.0);
        let mut after_sq = 0.0;
        g.visit_params(&mut |p| after_sq += p.grad.norm_sq());
        prop_assert!(after_sq.sqrt() <= before.max(2.0) + 1e-3);
        prop_assert!(after_sq.sqrt() <= 2.0 + 1e-3);
    }
}
