//! Severity sweep: how DeepMorph's ratios respond as a defect gets worse.
//!
//! ```text
//! cargo run --release --example defect_sweep
//! ```
//!
//! Sweeps the UTD mislabeling fraction from mild to severe on a LeNet /
//! synth-digits scenario and prints accuracy plus the reported ratios for
//! each severity. The UTD ratio should grow with severity while accuracy
//! falls — the dose-response curve behind the paper's single-severity
//! Table I cells.

use deepmorph_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("UTD severity sweep on LeNet / synth-digits\n");
    println!(
        "{:>9} | {:>8} | {:>7} | {:>5} {:>5} {:>5} | dominant",
        "fraction", "test acc", "faulty", "ITD", "UTD", "SD"
    );
    println!("{}", "-".repeat(66));

    for &fraction in &[0.2f32, 0.35, 0.5, 0.65, 0.8] {
        let scenario = Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
            .seed(21)
            .train_per_class(100)
            .test_per_class(40)
            .train_config(TrainConfig {
                epochs: 8,
                batch_size: 32,
                learning_rate: 0.05,
                lr_decay: 0.9,
                ..TrainConfig::default()
            })
            .inject(DefectSpec::unreliable_training_data(3, 5, fraction))
            .build()?;
        match scenario.run() {
            Ok(outcome) => {
                let r = outcome.report.ratios.as_array();
                println!(
                    "{fraction:>9.2} | {:>8.3} | {:>7} | {:>5.2} {:>5.2} {:>5.2} | {}",
                    outcome.test_accuracy,
                    outcome.faulty_count,
                    r[0],
                    r[1],
                    r[2],
                    outcome
                        .report
                        .dominant()
                        .map(|k| k.abbrev())
                        .unwrap_or("none"),
                );
            }
            Err(DeepMorphError::NoFaultyCases) => {
                println!("{fraction:>9.2} | (model perfect on the test set — defect too mild)");
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}
