//! Severity sweep: how DeepMorph's ratios respond as a defect gets worse.
//!
//! ```text
//! cargo run --release --example defect_sweep
//! ```
//!
//! Sweeps the UTD mislabeling fraction from mild to severe on a LeNet /
//! synth-digits scenario through the [`SweepRunner`]: the severity points
//! run **concurrently**, the healthy *base* model they all share is
//! trained **once** and reloaded from the artifact store for every cell,
//! and re-running the example against a warm store (`DEEPMORPH_ARTIFACTS`,
//! default `./artifacts`) recomputes nothing at all.
//!
//! The UTD ratio should grow with severity while accuracy falls — the
//! dose-response curve behind the paper's single-severity Table I cells.

use deepmorph_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fractions = [0.2f32, 0.35, 0.5, 0.65, 0.8];
    let base = Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
        .seed(21)
        .train_per_class(100)
        .test_per_class(40)
        .train_config(TrainConfig {
            epochs: 8,
            batch_size: 32,
            learning_rate: 0.05,
            lr_decay: 0.9,
            ..TrainConfig::default()
        });
    let plan = ExperimentPlan::from_defects(
        base,
        fractions
            .iter()
            .map(|&f| DefectSpec::unreliable_training_data(3, 5, f)),
    )?;

    let runner = SweepRunner::new(ArtifactStore::from_env()?);
    println!("UTD severity sweep on LeNet / synth-digits\n");
    let sweep = runner.run(&plan);

    println!(
        "{:>9} | {:>8} | {:>8} | {:>6} | {:>7} | {:>5} {:>5} {:>5} | dominant",
        "fraction", "base acc", "test acc", "drop", "faulty", "ITD", "UTD", "SD"
    );
    println!("{}", "-".repeat(84));
    for (fraction, cell) in fractions.iter().zip(&sweep.cells) {
        let base_acc = cell
            .baseline_test_accuracy
            .map(|a| format!("{a:>8.3}"))
            .unwrap_or_else(|| "       -".into());
        match &cell.outcome {
            Ok(outcome) => {
                let r = outcome.report.ratios.as_array();
                let drop = cell
                    .accuracy_drop()
                    .map(|d| format!("{d:>6.3}"))
                    .unwrap_or_else(|| "     -".into());
                println!(
                    "{fraction:>9.2} | {base_acc} | {:>8.3} | {drop} | {:>7} | {:>5.2} {:>5.2} {:>5.2} | {}",
                    outcome.test_accuracy,
                    outcome.faulty_count,
                    r[0],
                    r[1],
                    r[2],
                    outcome
                        .report
                        .dominant()
                        .map(|k| k.abbrev())
                        .unwrap_or("none"),
                );
            }
            Err(DeepMorphError::NoFaultyCases) => {
                println!("{fraction:>9.2} | (model perfect on the test set — defect too mild)");
            }
            Err(e) => return Err(e.clone().into()),
        }
    }

    println!("\nartifact store: {}", sweep.store);
    // The shared base (healthy twin) stage is trained at most once per
    // sweep: every severity point then *loads* it, so the store must
    // report at least one hit per cell.
    assert!(
        sweep.store.hits >= fractions.len() as u64,
        "base-training artifact was not reused across severity points ({})",
        sweep.store
    );
    println!(
        "base-training artifact reused across all {} severity points",
        fractions.len()
    );
    Ok(())
}
