//! Footprint inspection: the developer-facing, layer-by-layer view of why
//! individual inputs were misclassified.
//!
//! ```text
//! cargo run --release --example inspect_footprints
//! ```
//!
//! Trains a LeNet whose training data was starved of classes 0–2, then for
//! a handful of faulty cases prints the input (ASCII), the probe
//! trajectory trace from `deepmorph::explain`, and finishes with the
//! aggregate narrative.

use deepmorph::explain::{explain_case, explain_report};
use deepmorph::instrument::{InstrumentedModel, ProbeTrainingConfig};
use deepmorph::pattern::ClassPatterns;
use deepmorph_data::generator::render_ascii;
use deepmorph_repro::prelude::*;
use deepmorph_tensor::init::stream_rng;
use deepmorph_tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let defect = DefectSpec::insufficient_training_data(vec![0, 1, 2], 0.98);
    let scenario = Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
        .seed(5)
        .train_per_class(100)
        .test_per_class(25)
        .inject(defect.clone())
        .build()?;

    // Rebuild the pipeline pieces explicitly so we can reach the raw
    // footprints (Scenario::run would hide them behind the report).
    let (clean_train, test) = scenario.generate_data();
    let mut inject_rng = stream_rng(5, "scenario-inject");
    let train = defect.apply_to_dataset(&clean_train, &mut inject_rng)?;

    let spec = ModelSpec::new(ModelFamily::LeNet, ModelScale::Tiny, [1, 16, 16], 10);
    let mut model_rng = stream_rng(5, "scenario-model");
    let mut model = build_model(&spec, &mut model_rng)?;
    let mut train_rng = stream_rng(5, "scenario-train");
    Trainer::new(TrainConfig {
        epochs: 8,
        batch_size: 32,
        learning_rate: 0.05,
        lr_decay: 0.9,
        ..TrainConfig::default()
    })
    .fit(
        &mut model.graph,
        train.images(),
        train.labels(),
        &mut train_rng,
    )?;

    let mut faulty = FaultyCases::collect(&mut model, &test)?;
    faulty.truncate(100)?;
    println!("{} faulty cases collected\n", faulty.len());

    let mut inst = InstrumentedModel::build(
        model,
        train.images(),
        train.labels(),
        10,
        &ProbeTrainingConfig::default(),
    )?;
    let train_fps = inst.footprints(train.images())?;
    let patterns = ClassPatterns::learn(&train_fps, train.labels(), inst.probe_accuracies())?;
    let probe_labels: Vec<String> = train_fps.probe_labels().to_vec();

    let faulty_fps = inst.footprints(&faulty.images)?;
    for i in 0..faulty.len().min(3) {
        println!("--- faulty case {i} ---");
        let [c, h, w] = [1usize, 16, 16];
        let img_len = c * h * w;
        let img = Tensor::from_vec(
            faulty.images.data()[i * img_len..(i + 1) * img_len].to_vec(),
            &[c, h, w],
        )?;
        println!("{}", render_ascii(&img));
        println!(
            "{}",
            explain_case(
                faulty_fps.footprint(i),
                faulty.true_labels[i],
                faulty.predicted[i],
                &patterns,
                &probe_labels,
            )
        );
    }

    // Aggregate narrative via the normal diagnosis path.
    let scenario_outcome = scenario.run()?;
    println!("{}", explain_report(&scenario_outcome.report));
    Ok(())
}
