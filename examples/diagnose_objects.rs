//! Domain scenario: label noise in a CIFAR-like object classification
//! pipeline.
//!
//! ```text
//! cargo run --release --example diagnose_objects
//! ```
//!
//! A labeling vendor confused two object classes: 50% of class 3 was
//! delivered labeled as class 5. The team sees a ResNet with good-but-not-
//! great accuracy and suspicious, systematic confusions. DeepMorph
//! pinpoints Unreliable Training Data (UTD) and names the contaminated
//! pair — the actionable output a developer needs (re-audit those labels).

use deepmorph_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = 3usize;
    let target = 5usize;
    let scenario = Scenario::builder(ModelFamily::ResNet, DatasetKind::Objects)
        .seed(13)
        .scale(ModelScale::Tiny)
        .train_per_class(120)
        .test_per_class(40)
        .train_config(TrainConfig {
            epochs: 8,
            batch_size: 32,
            learning_rate: 0.05,
            lr_decay: 0.9,
            ..TrainConfig::default()
        })
        .inject(DefectSpec::unreliable_training_data(source, target, 0.5))
        .build()?;

    println!("training ResNet on synth-objects with mislabeled class {source}→{target} …");
    let outcome = scenario.run()?;
    println!();
    println!("{}", outcome.report);

    // Per-case view: which (true, predicted) pairs did the UTD-assigned
    // cases form? This is the pair a developer would re-audit.
    let mut pair_counts = std::collections::HashMap::new();
    for case in &outcome.report.cases {
        if case.assigned == "UTD" {
            *pair_counts
                .entry((case.true_label, case.predicted))
                .or_insert(0usize) += 1;
        }
    }
    let mut pairs: Vec<_> = pair_counts.into_iter().collect();
    pairs.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
    println!("suspicious confusion pairs (true -> predicted):");
    for ((t, p), n) in pairs.iter().take(3) {
        println!("  {t} -> {p}: {n} faulty cases");
    }
    if let Some(((t, p), _)) = pairs.first() {
        println!(
            "=> recommend auditing training labels between classes {t} and {p} \
             (injected: {source} tagged as {target})"
        );
    }
    Ok(())
}
