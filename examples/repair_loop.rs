//! Repair loop: diagnose, apply DeepMorph's recommendation, retrain, and
//! measure the improvement — the paper's "we modify the models accordingly
//! and evaluate whether DeepMorph is helpful to improving model
//! performance".
//!
//! ```text
//! cargo run --release --example repair_loop
//! ```
//!
//! Runs one scenario per defect type through the [`SweepRunner`] with the
//! repair evaluation enabled: the three cells execute concurrently, and
//! the diagnosis stages are cached in the artifact store
//! (`DEEPMORPH_ARTIFACTS`, default `./artifacts`) — rerunning the example
//! retrains only the repair step's model, reusing every cached diagnosis
//! stage.

use deepmorph_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cases: Vec<(ModelFamily, DatasetKind, DefectSpec)> = vec![
        (
            ModelFamily::LeNet,
            DatasetKind::Digits,
            DefectSpec::insufficient_training_data(vec![0, 1, 2], 0.98),
        ),
        (
            ModelFamily::ResNet,
            DatasetKind::Objects,
            DefectSpec::unreliable_training_data(3, 5, 0.5),
        ),
        (
            ModelFamily::LeNet,
            DatasetKind::Digits,
            DefectSpec::structure_defect(6),
        ),
    ];

    let mut plan = ExperimentPlan::new().with_repair(true).with_baseline(false);
    for (family, dataset, defect) in &cases {
        plan = plan.with_cell(
            Scenario::builder(*family, *dataset)
                .seed(7)
                .train_per_class(120)
                .test_per_class(40)
                .train_config(TrainConfig {
                    epochs: 8,
                    batch_size: 32,
                    learning_rate: 0.05,
                    lr_decay: 0.9,
                    ..TrainConfig::default()
                })
                .inject(defect.clone())
                .build()?,
        );
    }

    let runner = SweepRunner::new(ArtifactStore::from_env()?);
    let sweep = runner.run(&plan);

    for cell in &sweep.cells {
        println!("=== {} ===", cell.subject);
        match (&cell.outcome, &cell.repair) {
            (Ok(outcome), Some(repair)) => {
                println!(
                    "  diagnosis : {} (ratios {})",
                    outcome
                        .report
                        .dominant()
                        .map(|k| k.name())
                        .unwrap_or("none"),
                    outcome.report.ratios
                );
                println!("  repair    : {}", repair.plan);
                println!(
                    "  accuracy  : {:.3} -> {:.3} ({:+.3})",
                    repair.accuracy_before,
                    repair.accuracy_after,
                    repair.improvement()
                );
            }
            (Err(DeepMorphError::NoFaultyCases), _) => {
                println!("  model was perfect on the test set; nothing to repair");
            }
            (Err(e), _) => return Err(e.clone().into()),
            (Ok(_), None) => unreachable!("repair enabled for every cell"),
        }
        println!();
    }
    println!("artifact store: {}", sweep.store);
    Ok(())
}
