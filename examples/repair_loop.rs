//! Repair loop: diagnose, apply DeepMorph's recommendation, retrain, and
//! measure the improvement — the paper's "we modify the models accordingly
//! and evaluate whether DeepMorph is helpful to improving model
//! performance".
//!
//! ```text
//! cargo run --release --example repair_loop
//! ```
//!
//! Runs one scenario per defect type. For each: the defective model's
//! accuracy, the diagnosis, the recommended repair, and the accuracy after
//! applying it.

use deepmorph_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cases: Vec<(ModelFamily, DatasetKind, DefectSpec)> = vec![
        (
            ModelFamily::LeNet,
            DatasetKind::Digits,
            DefectSpec::insufficient_training_data(vec![0, 1, 2], 0.98),
        ),
        (
            ModelFamily::ResNet,
            DatasetKind::Objects,
            DefectSpec::unreliable_training_data(3, 5, 0.5),
        ),
        (
            ModelFamily::LeNet,
            DatasetKind::Digits,
            DefectSpec::structure_defect(6),
        ),
    ];

    for (family, dataset, defect) in cases {
        println!("=== {family} on {dataset}, injected {defect} ===");
        let scenario = Scenario::builder(family, dataset)
            .seed(7)
            .train_per_class(120)
            .test_per_class(40)
            .train_config(TrainConfig {
                epochs: 8,
                batch_size: 32,
                learning_rate: 0.05,
                lr_decay: 0.9,
                ..TrainConfig::default()
            })
            .inject(defect)
            .build()?;

        match scenario.run_with_repair() {
            Ok((outcome, repair)) => {
                println!(
                    "  diagnosis : {} (ratios {})",
                    outcome
                        .report
                        .dominant()
                        .map(|k| k.name())
                        .unwrap_or("none"),
                    outcome.report.ratios
                );
                println!("  repair    : {}", repair.plan);
                println!(
                    "  accuracy  : {:.3} -> {:.3} ({:+.3})",
                    repair.accuracy_before,
                    repair.accuracy_after,
                    repair.improvement()
                );
            }
            Err(DeepMorphError::NoFaultyCases) => {
                println!("  model was perfect on the test set; nothing to repair");
            }
            Err(e) => return Err(e.into()),
        }
        println!();
    }
    Ok(())
}
