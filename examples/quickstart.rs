//! Quickstart: diagnose a model whose training data is missing three
//! classes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The scenario trains a LeNet on the synthetic digit dataset after an
//! Insufficient-Training-Data (ITD) injection removed almost all samples
//! of classes 0–2, then lets DeepMorph attribute the resulting test
//! failures. Expected output: the ITD ratio dominates.

use deepmorph_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the experiment: model, dataset, and the defect to
    //    inject. In a real deployment there is no injection — you hand
    //    DeepMorph your model, training set, and misclassified cases.
    let scenario = Scenario::builder(ModelFamily::LeNet, DatasetKind::Digits)
        .seed(7)
        .scale(ModelScale::Tiny)
        .train_per_class(100)
        .test_per_class(30)
        .inject(DefectSpec::insufficient_training_data(vec![0, 1, 2], 0.98))
        .build()?;

    // 2. Run: generate data, inject, train, collect faulty cases,
    //    instrument, diagnose.
    println!("training LeNet on synth-digits with an ITD injection …");
    let outcome = scenario.run()?;

    // 3. Read the report.
    println!();
    println!("{}", outcome.report);
    println!(
        "model test accuracy {:.3}; {} faulty cases",
        outcome.test_accuracy, outcome.faulty_count
    );

    match outcome.report.dominant() {
        Some(DefectKind::InsufficientTrainingData) => {
            println!("=> DeepMorph correctly identified the injected ITD defect.");
        }
        Some(other) => println!("=> DeepMorph reported {other} (expected ITD)."),
        None => println!("=> no dominant defect reported."),
    }
    Ok(())
}
